package topo

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFigure1MatchesPaper(t *testing.T) {
	g := Figure1()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 6 || len(g.Routers) != 5 {
		t.Fatalf("got %d links, %d routers", len(g.Links), len(g.Routers))
	}
	wantHA := map[string]string{"L1": "A", "L2": "B", "L3": "C", "L4": "D", "L5": "D", "L6": "E"}
	for li, l := range g.Links {
		if !l.LAN {
			t.Errorf("%s not a LAN", l.Name)
		}
		if got := g.Routers[g.HomeAgent[li]].Name; got != wantHA[l.Name] {
			t.Errorf("%s home agent %s, want %s", l.Name, got, wantHA[l.Name])
		}
	}
	// D is the paper's three-way junction.
	if got := len(g.Routers[3].Links); got != 3 {
		t.Errorf("router D attaches %d links, want 3", got)
	}
}

func TestGeneratedFamiliesAreValid(t *testing.T) {
	for _, family := range []string{"tree", "grid", "waxman", "ba"} {
		for _, n := range []int{1, 2, 5, 16, 33, 64} {
			for seed := int64(1); seed <= 2; seed++ {
				g, err := FromSpec(family, n, seed)
				if err != nil {
					t.Fatalf("%s/%d/%d: %v", family, n, seed, err)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("%s/%d/%d: %v", family, n, seed, err)
				}
				if len(g.Routers) != n {
					t.Fatalf("%s/%d: %d routers", family, n, len(g.Routers))
				}
				lans := g.LANs()
				if len(lans) != n {
					t.Fatalf("%s/%d: %d LANs, want one per router", family, n, len(lans))
				}
				for _, li := range lans {
					if ha := g.HomeAgent[li]; ha < 0 {
						t.Fatalf("%s/%d: LAN %s without home agent", family, n, g.Links[li].Name)
					}
				}
				if !g.Connected() {
					t.Fatalf("%s/%d/%d: disconnected", family, n, seed)
				}
			}
		}
	}
}

func TestTreeAndGridShape(t *testing.T) {
	g := Tree(13, 3)
	if got := g.CoreEdges(); got != 12 {
		t.Errorf("tree of 13: %d core edges, want 12", got)
	}
	g = Grid(3, 4)
	// 3x4 mesh: 3*3 horizontal + 2*4 vertical = 17 core edges.
	if got := g.CoreEdges(); got != 17 {
		t.Errorf("3x4 grid: %d core edges, want 17", got)
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	for _, family := range []string{"tree", "grid", "waxman", "ba"} {
		a, _ := FromSpec(family, 40, 7)
		b, _ := FromSpec(family, 40, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different graphs", family)
		}
	}
	// The random families must actually respond to the seed.
	for _, family := range []string{"waxman", "ba"} {
		a, _ := FromSpec(family, 40, 7)
		b, _ := FromSpec(family, 40, 8)
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: seeds 7 and 8 produced identical graphs", family)
		}
	}
}

func TestFromSpecRejectsUnknown(t *testing.T) {
	if _, err := FromSpec("torus", 9, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := FromSpec("tree", 0, 1); err == nil {
		t.Error("zero routers accepted")
	}
}

func TestWorkloadProperties(t *testing.T) {
	g, _ := FromSpec("grid", 16, 1)
	spec := WorkloadSpec{
		MNs: 200, Sources: 3, MemberFrac: 0.4,
		MeanDwell: 30 * time.Second,
		Start:     10 * time.Second,
		Horizon:   5 * time.Minute,
		Seed:      42,
	}
	w, err := GenWorkload(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	lan := map[int]bool{}
	for _, li := range g.LANs() {
		lan[li] = true
	}
	members := 0
	for _, m := range w.MNs {
		if !lan[m.Home] {
			t.Fatalf("%s homed on non-LAN link %d", m.Name, m.Home)
		}
		if m.Member {
			members++
		}
	}
	if frac := float64(members) / float64(len(w.MNs)); frac < 0.25 || frac > 0.55 {
		t.Errorf("member fraction %.2f far from requested 0.4", frac)
	}
	for _, s := range w.Sources {
		if !lan[s.Link] {
			t.Fatalf("%s on non-LAN link %d", s.Name, s.Link)
		}
	}
	cur := make(map[int]int)
	for i, m := range w.MNs {
		cur[i] = m.Home
	}
	var prev time.Duration
	for _, mv := range w.Moves {
		if mv.At < prev {
			t.Fatal("moves not sorted by time")
		}
		prev = mv.At
		if mv.At < spec.Start || mv.At >= spec.Horizon {
			t.Fatalf("move at %v outside [%v, %v)", mv.At, spec.Start, spec.Horizon)
		}
		if !lan[mv.To] {
			t.Fatalf("move target %d not a LAN", mv.To)
		}
		if mv.To == cur[mv.MN] {
			t.Fatalf("mn%d moved to the link it is already on", mv.MN)
		}
		cur[mv.MN] = mv.To
	}
	if len(w.Moves) == 0 {
		t.Fatal("no churn generated")
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	g, _ := FromSpec("tree", 10, 1)
	spec := WorkloadSpec{
		MNs: 50, Sources: 2, MemberFrac: 0.5,
		MeanDwell: 20 * time.Second,
		Start:     10 * time.Second,
		Horizon:   2 * time.Minute,
		Seed:      9,
	}
	a, _ := GenWorkload(g, spec)
	b, _ := GenWorkload(g, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different workloads")
	}
	spec.Seed = 10
	c, _ := GenWorkload(g, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestWorkloadForcesAMember(t *testing.T) {
	g, _ := FromSpec("tree", 4, 1)
	// A tiny population with low density could draw zero members; the
	// generator must force one so the cell still measures delivery.
	w, err := GenWorkload(g, WorkloadSpec{MNs: 2, MemberFrac: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Members()) == 0 {
		t.Fatal("no members despite MemberFrac > 0")
	}
}

func TestSingleLANMeansNoMoves(t *testing.T) {
	g := Tree(1, 2)
	w, err := GenWorkload(g, WorkloadSpec{
		MNs: 5, MemberFrac: 1, MeanDwell: time.Second, Horizon: time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Moves) != 0 {
		t.Fatalf("%d moves generated with a single LAN", len(w.Moves))
	}
}

func TestDOTRendersAllElements(t *testing.T) {
	g := Figure1()
	dot := g.DOT()
	for _, want := range []string{"graph \"fig1\"", "\"A\" -- \"L1\"", "HA=D", "\"L6\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	g2, _ := FromSpec("grid", 6, 1)
	dot2 := g2.DOT()
	if !strings.Contains(dot2, "\"R0\" -- \"R1\" [label=\"c0-1\"") {
		t.Errorf("grid DOT missing p2p core edge:\n%s", dot2)
	}
}
