package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 || h.Mean() != 3 {
		t.Fatalf("n=%d mean=%v", h.N(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50=%v", got)
	}
	if got := h.Quantile(0.25); got != 2 {
		t.Fatalf("p25=%v (linear interpolation on ranks)", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if d := math.Abs(h.Stddev() - want); d > 1e-12 {
		t.Fatalf("stddev=%v want %v", h.Stddev(), want)
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramInterpolation(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(10)
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("p50 of {0,10} = %v", got)
	}
	if got := h.Quantile(0.9); math.Abs(got-9) > 1e-12 {
		t.Fatalf("p90 of {0,10} = %v", got)
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(2)
	_ = h.Quantile(0.5)
	h.Add(1) // must re-sort
	if h.Min() != 1 {
		t.Fatal("sample added after query ignored by ordering")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickHistogramQuantilesMonotone(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v))
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := h.Quantile(qa), h.Quantile(qb)
		return va <= vb && va >= h.Min() && vb <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
