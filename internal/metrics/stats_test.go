package metrics

import (
	"math"
	"testing"
)

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.CI95() != 0 {
		t.Fatalf("zero value not neutral: %+v", s)
	}
	if s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty min/max = %v/%v, want 0/0", s.Min(), s.Max())
	}
}

func TestStatsSingleSample(t *testing.T) {
	var s Stats
	s.Add(42)
	if s.N() != 1 || s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("n=1 aggregate wrong: %+v", s)
	}
	// CI is undefined for n=1 and must be reported as 0-width.
	if s.Variance() != 0 || s.Stddev() != 0 || s.CI95() != 0 {
		t.Errorf("n=1: variance=%v stddev=%v ci=%v, want all 0",
			s.Variance(), s.Stddev(), s.CI95())
	}
}

func TestStatsConstantSeries(t *testing.T) {
	var s Stats
	for i := 0; i < 100; i++ {
		s.Add(7.25)
	}
	if s.Mean() != 7.25 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Stddev() != 0 || s.CI95() != 0 {
		t.Errorf("constant series: stddev=%v ci=%v, want 0", s.Stddev(), s.CI95())
	}
	if s.Min() != 7.25 || s.Max() != 7.25 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsKnownSeries(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sum of squared deviations is 32; sample variance 32/7.
	if got, want := s.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	// CI95 = t(7) * s / sqrt(8).
	want := 2.365 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ci95 = %v, want %v", got, want)
	}
}

// TestStatsWelfordStability checks the motivating property of the online
// update: a large offset plus a tiny spread. The naive sum-of-squares
// formula loses all significant digits here (mean² ≈ 1e18 swamps a
// variance of 0.25 in float64); Welford keeps it exact.
func TestStatsWelfordStability(t *testing.T) {
	var s Stats
	const offset = 1e9
	const n = 1_000_000
	for i := 0; i < n; i++ {
		s.Add(offset + float64(i%2)) // alternating offset, offset+1
	}
	if got := s.Mean(); math.Abs(got-(offset+0.5)) > 1e-6 {
		t.Errorf("mean = %v, want %v", got, offset+0.5)
	}
	// Population variance of the alternating series is 0.25; the sample
	// variance at n=1e6 is within 1e-6 of it.
	if got := s.Variance(); math.Abs(got-0.25) > 1e-4 {
		t.Errorf("variance = %v, want 0.25 (catastrophic cancellation?)", got)
	}
	if s.CI95() <= 0 {
		t.Error("ci95 should be positive for a non-constant series")
	}
}

func TestStatsMerge(t *testing.T) {
	var whole, a, b Stats
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100, -3}
	for i, v := range vals {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	// Merging into the zero value copies.
	var z Stats
	z.Merge(whole)
	if z != whole {
		t.Error("merge into zero value not a copy")
	}
	// Merging the zero value is a no-op.
	before := whole
	whole.Merge(Stats{})
	if whole != before {
		t.Error("merging empty stats changed the aggregate")
	}
}
