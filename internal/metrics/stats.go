package metrics

import "math"

// Welford accumulates scalar samples with Welford's online algorithm and
// reports streaming statistics: mean, sample standard deviation, and the
// 95% confidence-interval half-width of the mean (Student's t). The sweep
// engine reduces replicate runs through it, and the scale experiments feed
// it per-event samples (join delays across thousands of mobile nodes);
// unlike Histogram it keeps no samples, so it is O(1) in memory and
// numerically stable at any sample count. For order statistics over a
// stream, pair it with a Reservoir.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Stats is the original name of the Welford accumulator, kept as an alias
// for the replicate-reduction call sites that predate the streaming
// metrics layer.
type Stats = Welford

// Add accumulates one sample.
func (s *Welford) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another accumulator into s (Chan et al. parallel update).
func (s *Welford) Merge(o Stats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := float64(s.n + o.n)
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/n
	s.mean += d * float64(o.n) / n
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the sample count.
func (s *Welford) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Welford) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 when empty).
func (s *Welford) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Welford) Max() float64 { return s.max }

// Variance returns the sample (n−1) variance; 0 when fewer than two
// samples exist.
func (s *Welford) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Welford) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean.
// With fewer than two samples the interval is undefined and reported as
// 0-width.
func (s *Welford) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCrit95(s.n-1) * s.Stddev() / math.Sqrt(float64(s.n))
}

// tCrit95 is the two-sided 95% Student's t critical value for df degrees
// of freedom (the normal 1.96 beyond the table).
func tCrit95(df int) float64 {
	table := [...]float64{
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		21: 2.080,
		22: 2.074,
		23: 2.069,
		24: 2.064,
		25: 2.060,
		26: 2.056,
		27: 2.052,
		28: 2.048,
		29: 2.045,
		30: 2.042,
	}
	if df < 1 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}
