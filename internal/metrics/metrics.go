// Package metrics measures what the paper argues about: per-link bandwidth
// by traffic class (multicast data, tunnel overhead, MLD / PIM / NDP /
// Mobile IPv6 signaling), per-receiver delivery continuity (join delay,
// leave-delay waste, loss, path hops), and system load counters.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/sim"
)

// Class partitions wire traffic for accounting.
type Class int

// Traffic classes.
const (
	ClassData    Class = iota // multicast application data (innermost)
	ClassTunnel               // encapsulation overhead bytes (outer headers)
	ClassMLD                  // MLD queries/reports/dones
	ClassNDP                  // router discovery / SLAAC
	ClassPIM                  // PIM control
	ClassMIPv6                // binding updates/acks (signaling)
	ClassUnicast              // other unicast (tunneled payloads that are unicast data)
	ClassOther
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassTunnel:
		return "tunnel-ovh"
	case ClassMLD:
		return "mld"
	case ClassNDP:
		return "ndp"
	case ClassPIM:
		return "pim"
	case ClassMIPv6:
		return "mipv6"
	case ClassUnicast:
		return "unicast"
	default:
		return "other"
	}
}

// Classes lists all classes in accounting order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Split classifies one transmitted frame into per-class byte counts. A
// tunneled frame is split: each encapsulation layer's 40-byte outer header
// counts as ClassTunnel, the innermost packet counts under its own class —
// so "tunnel overhead" measures exactly the extra bytes tunneling costs.
func Split(pkt *ipv6.Packet, wireLen int) map[Class]int {
	var counts [numClasses]int
	SplitInto(pkt, wireLen, &counts)
	out := map[Class]int{}
	for c, b := range counts {
		if b != 0 {
			out[Class(c)] = b
		}
	}
	return out
}

// SplitInto is the allocation-free form of Split: it adds the frame's
// per-class byte counts into counts. Per-frame taps on large generated
// topologies (the Accountant watches every link) use it to keep the
// accounting off the allocator.
func SplitInto(pkt *ipv6.Packet, wireLen int, counts *[numClasses]int) {
	// Fragments of tunnel packets cannot be walked into (only the first
	// fragment holds the inner header, and never completely): the whole
	// frame is attributed to tunnel overhead — in this system tunnel-MTU
	// fragmentation is itself a cost of tunneling, which is what the
	// accounting should show. Non-tunnel fragments classify by their
	// outer destination.
	if pkt.Fragment != nil {
		if pkt.Proto == ipv6.ProtoIPv6 {
			counts[ClassTunnel] += wireLen
			return
		}
		if pkt.Hdr.Dst.IsMulticast() {
			counts[ClassData] += wireLen
		} else {
			counts[ClassUnicast] += wireLen
		}
		return
	}
	inner := pkt
	overhead := 0
	for inner.Proto == ipv6.ProtoIPv6 {
		next, err := ipv6.Decode(inner.Payload)
		if err != nil {
			break
		}
		overhead += ipv6.TunnelOverheadBytes
		inner = next
	}
	if overhead > 0 {
		counts[ClassTunnel] += overhead
	}
	counts[classify(inner)] += wireLen - overhead
}

func classify(pkt *ipv6.Packet) Class {
	switch pkt.Proto {
	case ipv6.ProtoPIM:
		return ClassPIM
	case ipv6.ProtoICMPv6:
		if len(pkt.Payload) == 0 {
			return ClassOther
		}
		switch pkt.Payload[0] {
		case 130, 131, 132: // MLD query/report/done
			return ClassMLD
		case 133, 134: // RS/RA
			return ClassNDP
		}
		return ClassOther
	case ipv6.ProtoUDP:
		if pkt.Hdr.Dst.IsMulticast() {
			return ClassData
		}
		return ClassUnicast
	case ipv6.ProtoNoNext:
		for _, o := range pkt.DestOpts {
			switch o.Type {
			case ipv6.OptBindingUpdate, ipv6.OptBindingAck, ipv6.OptBindingReq:
				return ClassMIPv6
			}
		}
		return ClassOther
	default:
		if pkt.Hdr.Dst.IsMulticast() {
			return ClassData
		}
		return ClassOther
	}
}

// LinkCounters accumulates per-class bytes and frames for one link.
type LinkCounters struct {
	Link   *netem.Link
	Bytes  [numClasses]uint64
	Frames [numClasses]uint64
}

// Total returns all bytes across classes.
func (c *LinkCounters) Total() uint64 {
	var t uint64
	for _, b := range c.Bytes {
		t += b
	}
	return t
}

// Accountant taps every link of a network and keeps classified counters.
type Accountant struct {
	counters map[*netem.Link]*LinkCounters
	order    []*netem.Link
}

// NewAccountant taps all current links of net.
func NewAccountant(net *netem.Network) *Accountant {
	a := &Accountant{counters: map[*netem.Link]*LinkCounters{}}
	for _, l := range net.Links {
		a.Watch(l)
	}
	return a
}

// Watch starts accounting on one link.
func (a *Accountant) Watch(l *netem.Link) {
	if _, ok := a.counters[l]; ok {
		return
	}
	c := &LinkCounters{Link: l}
	a.counters[l] = c
	a.order = append(a.order, l)
	l.AddTap(func(ev netem.TxEvent) {
		var counts [numClasses]int
		SplitInto(ev.Pkt, len(ev.Frame), &counts)
		for class, bytes := range counts {
			if bytes == 0 {
				continue
			}
			c.Bytes[class] += uint64(bytes)
			c.Frames[class]++
		}
	})
}

// Of returns the counters for one link (nil if unwatched).
func (a *Accountant) Of(l *netem.Link) *LinkCounters { return a.counters[l] }

// TotalBytes sums one class over all links.
func (a *Accountant) TotalBytes(class Class) uint64 {
	var t uint64
	for _, c := range a.counters {
		t += c.Bytes[class]
	}
	return t
}

// TotalAll sums every class over all links.
func (a *Accountant) TotalAll() uint64 {
	var t uint64
	for _, c := range a.counters {
		t += c.Total()
	}
	return t
}

// Snapshot returns per-link counters in watch order.
func (a *Accountant) Snapshot() []*LinkCounters {
	out := make([]*LinkCounters, 0, len(a.order))
	for _, l := range a.order {
		out = append(out, a.counters[l])
	}
	return out
}

// Summary renders a per-link, per-class byte table.
func (a *Accountant) Summary() string {
	var b strings.Builder
	cols := Classes()
	fmt.Fprintf(&b, "%-8s", "link")
	for _, c := range cols {
		fmt.Fprintf(&b, "%12s", c)
	}
	fmt.Fprintf(&b, "%12s\n", "total")
	for _, lc := range a.Snapshot() {
		fmt.Fprintf(&b, "%-8s", lc.Link.Name)
		for _, c := range cols {
			fmt.Fprintf(&b, "%12d", lc.Bytes[c])
		}
		fmt.Fprintf(&b, "%12d\n", lc.Total())
	}
	return b.String()
}

// Delivery is one datagram reception at one receiver.
type Delivery struct {
	Seq  uint64
	At   sim.Time
	Hops int // routers crossed end to end (tunnel legs included)
}

// FlowProbe tracks one receiver's view of one CBR flow: which sequence
// numbers arrived when, with gap analysis for join/leave delay studies.
type FlowProbe struct {
	Name       string
	Deliveries []Delivery
	seen       map[uint64]int
	Duplicates uint64
}

// NewFlowProbe creates an empty probe.
func NewFlowProbe(name string) *FlowProbe {
	return &FlowProbe{Name: name, seen: map[uint64]int{}}
}

// Record notes the arrival of sequence number seq at time at.
func (p *FlowProbe) Record(seq uint64, at sim.Time, hops int) {
	p.seen[seq]++
	if p.seen[seq] > 1 {
		p.Duplicates++
		return
	}
	p.Deliveries = append(p.Deliveries, Delivery{Seq: seq, At: at, Hops: hops})
}

// Count returns distinct datagrams received.
func (p *FlowProbe) Count() int { return len(p.Deliveries) }

// FirstAfter returns the earliest delivery at or after t, and whether one
// exists. The join delay after a move at time t is FirstAfter(t).At - t.
func (p *FlowProbe) FirstAfter(t sim.Time) (Delivery, bool) {
	for _, d := range p.Deliveries {
		if d.At >= t {
			return d, true
		}
	}
	return Delivery{}, false
}

// LastBefore returns the latest delivery strictly before t.
func (p *FlowProbe) LastBefore(t sim.Time) (Delivery, bool) {
	var out Delivery
	ok := false
	for _, d := range p.Deliveries {
		if d.At < t {
			out, ok = d, true
		} else {
			break
		}
	}
	return out, ok
}

// CountBetween counts deliveries in [from, to).
func (p *FlowProbe) CountBetween(from, to sim.Time) int {
	n := 0
	for _, d := range p.Deliveries {
		if d.At >= from && d.At < to {
			n++
		}
	}
	return n
}

// MeanHops averages the path length over deliveries in [from, to); the
// routing-optimality criterion compares this against the unicast shortest
// path.
func (p *FlowProbe) MeanHops(from, to sim.Time) float64 {
	n, sum := 0, 0
	for _, d := range p.Deliveries {
		if d.At >= from && d.At < to {
			n++
			sum += d.Hops
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MaxGap returns the largest inter-delivery gap within [from, to).
func (p *FlowProbe) MaxGap(from, to sim.Time) (gap sim.Time) {
	var prev sim.Time
	started := false
	for _, d := range p.Deliveries {
		if d.At < from || d.At >= to {
			continue
		}
		if started {
			if g := d.At - prev; g > gap {
				gap = g
			}
		}
		prev = d.At
		started = true
	}
	return gap
}

// Row is one labeled row of numeric results.
type Row struct {
	Label  string
	Values map[string]float64
}

// Table renders rows as an aligned text table with the given column order.
// The benchmark harnesses use it to print the paper's tables.
func Table(title string, columns []string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	width := 14
	for _, c := range columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	labelW := 28
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for _, c := range columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.Label)
		for _, c := range columns {
			v, ok := r.Values[c]
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			fmt.Fprintf(&b, "%*s", width, formatValue(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// SortedKeys returns map keys in sorted order (table-stability helper).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
