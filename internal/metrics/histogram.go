package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates scalar samples (delays, sizes) and answers
// order-statistics queries. Sweep experiments use it to report
// distributions rather than bare means.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	m := h.Mean()
	var s float64
	for _, v := range h.samples {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// between closest ranks; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sort()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return h.samples[n-1]
	}
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// String summarizes as "n=.. mean=.. p50=.. p95=.. max=..".
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}
