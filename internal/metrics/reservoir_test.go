package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirExactWhileUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		v := float64((i * 37) % 100)
		r.Add(v)
		h.Add(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 1} {
		if got, want := r.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("q=%.2f: reservoir %v, exact %v", q, got, want)
		}
	}
	if r.N() != 100 || r.Retained() != 100 {
		t.Errorf("N=%d retained=%d", r.N(), r.Retained())
	}
}

func TestReservoirDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []float64 {
		r := NewReservoir(32, seed)
		for i := 0; i < 10000; i++ {
			r.Add(float64(i))
		}
		out := make([]float64, 0, 5)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			out = append(out, r.Quantile(q))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds retained identical subsets (suspicious)")
	}
}

func TestReservoirEstimatesQuantiles(t *testing.T) {
	// Uniform [0,1) stream of 50k samples through a 512-slot reservoir:
	// estimated quantiles must land near q.
	r := NewReservoir(512, 3)
	src := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		r.Add(src.Float64())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := r.Quantile(q); math.Abs(got-q) > 0.08 {
			t.Errorf("q=%.1f estimated as %.3f", q, got)
		}
	}
	// Exact full-stream aggregates remain exact.
	if r.Mean() < 0.45 || r.Mean() > 0.55 {
		t.Errorf("mean %v", r.Mean())
	}
	if r.Min() < 0 || r.Max() >= 1 {
		t.Errorf("min=%v max=%v", r.Min(), r.Max())
	}
	if r.Retained() != 512 || r.N() != 50000 {
		t.Errorf("retained=%d n=%d", r.Retained(), r.N())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, v := range vals {
		w.Add(v)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var m2 float64
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	variance := m2 / float64(len(vals)-1)
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean %v want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-12 {
		t.Errorf("variance %v want %v", w.Variance(), variance)
	}
	if w.Min() != 1 || w.Max() != 9 {
		t.Errorf("min=%v max=%v", w.Min(), w.Max())
	}
}
