package metrics

import (
	"math/rand"
	"sort"
)

// Reservoir is a seeded fixed-capacity reservoir sampler (Vitter's
// algorithm R): it holds a uniform random subset of an unbounded sample
// stream and answers quantile queries from that subset, so order
// statistics over millions of events cost O(capacity) memory. The scale
// experiments use it for join/leave-delay percentiles across thousands of
// mobile nodes where a full Histogram would grow with the event count.
//
// Sampling is driven by its own seeded generator, never by the simulation
// scheduler's RNG — a Reservoir draw must not perturb the protocol
// timeline, and the retained subset must be reproducible for a fixed seed
// regardless of what else the timeline randomizes.
type Reservoir struct {
	cap     int
	n       int
	samples []float64
	sorted  bool
	rng     *rand.Rand

	// Exact extrema and mean are tracked over the FULL stream (they are
	// O(1)), so Min/Max/Mean never suffer sampling error.
	w Welford
}

// NewReservoir creates a sampler keeping at most capacity samples,
// seeded deterministically.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap: capacity,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Add offers one sample to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.w.Add(v)
	r.n++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		r.sorted = false
		return
	}
	if j := r.rng.Intn(r.n); j < r.cap {
		r.samples[j] = v
		r.sorted = false
	}
}

// N returns the total number of samples offered (not retained).
func (r *Reservoir) N() int { return r.n }

// Retained returns how many samples the reservoir currently holds.
func (r *Reservoir) Retained() int { return len(r.samples) }

// Mean returns the exact mean of the full stream (0 when empty).
func (r *Reservoir) Mean() float64 { return r.w.Mean() }

// Min returns the exact minimum of the full stream (0 when empty).
func (r *Reservoir) Min() float64 { return r.w.Min() }

// Max returns the exact maximum of the full stream (0 when empty).
func (r *Reservoir) Max() float64 { return r.w.Max() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the retained subset
// by linear interpolation between closest ranks; 0 when empty. Exact while
// the stream fits the capacity; an unbiased estimate beyond it.
func (r *Reservoir) Quantile(q float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	if q <= 0 {
		return r.samples[0]
	}
	if q >= 1 {
		return r.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return r.samples[n-1]
	}
	return r.samples[lo]*(1-frac) + r.samples[lo+1]*frac
}
