package metrics

import (
	"strings"
	"testing"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/sim"
)

func dataPacket(group bool) *ipv6.Packet {
	dst := ipv6.MustParseAddr("ff0e::101")
	if !group {
		dst = ipv6.MustParseAddr("2001:db8:2::1")
	}
	src := ipv6.MustParseAddr("2001:db8:1::1")
	u := &ipv6.UDP{SrcPort: 9, DstPort: 9, Payload: make([]byte, 100)}
	return &ipv6.Packet{
		Hdr:     ipv6.Header{Src: src, Dst: dst, HopLimit: 64},
		Proto:   ipv6.ProtoUDP,
		Payload: u.Marshal(src, dst),
	}
}

func TestSplitPlainClasses(t *testing.T) {
	cases := []struct {
		name string
		pkt  *ipv6.Packet
		want Class
	}{
		{"multicast-udp", dataPacket(true), ClassData},
		{"unicast-udp", dataPacket(false), ClassUnicast},
		{"pim", &ipv6.Packet{Hdr: ipv6.Header{HopLimit: 1}, Proto: ipv6.ProtoPIM, Payload: []byte{0x20, 0, 0, 0}}, ClassPIM},
		{"mld", &ipv6.Packet{Hdr: ipv6.Header{HopLimit: 1}, Proto: ipv6.ProtoICMPv6, Payload: []byte{130, 0, 0, 0}}, ClassMLD},
		{"ndp", &ipv6.Packet{Hdr: ipv6.Header{HopLimit: 255}, Proto: ipv6.ProtoICMPv6, Payload: []byte{134, 0, 0, 0}}, ClassNDP},
		{"other-icmp", &ipv6.Packet{Hdr: ipv6.Header{HopLimit: 255}, Proto: ipv6.ProtoICMPv6, Payload: []byte{1, 0, 0, 0}}, ClassOther},
		{"empty-icmp", &ipv6.Packet{Proto: ipv6.ProtoICMPv6}, ClassOther},
	}
	for _, c := range cases {
		wire, err := c.pkt.Encode()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		split := Split(c.pkt, len(wire))
		if split[c.want] != len(wire) {
			t.Errorf("%s: split = %v, want all %d bytes in %s", c.name, split, len(wire), c.want)
		}
	}
}

func TestSplitBindingUpdateIsMIPv6(t *testing.T) {
	bu := &ipv6.BindingUpdate{HomeReg: true, Ack: true, Sequence: 1, Lifetime: 10}
	opt, _ := bu.Marshal()
	pkt := &ipv6.Packet{
		Hdr:      ipv6.Header{Src: ipv6.MustParseAddr("2001:db8:2::9"), Dst: ipv6.MustParseAddr("2001:db8:1::1"), HopLimit: 64},
		DestOpts: []ipv6.Option{opt},
		Proto:    ipv6.ProtoNoNext,
	}
	wire, _ := pkt.Encode()
	split := Split(pkt, len(wire))
	if split[ClassMIPv6] != len(wire) {
		t.Fatalf("split = %v", split)
	}
}

func TestSplitTunnelOverhead(t *testing.T) {
	inner := dataPacket(true)
	ha := ipv6.MustParseAddr("2001:db8:4::1")
	coa := ipv6.MustParseAddr("2001:db8:6::99")
	outer, err := ipv6.Encapsulate(ha, coa, 64, inner)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := outer.Encode()
	split := Split(outer, len(wire))
	if split[ClassTunnel] != ipv6.TunnelOverheadBytes {
		t.Errorf("tunnel overhead = %d, want %d", split[ClassTunnel], ipv6.TunnelOverheadBytes)
	}
	if split[ClassData] != len(wire)-ipv6.TunnelOverheadBytes {
		t.Errorf("data share = %d", split[ClassData])
	}
	// Two layers: double overhead.
	outer2, _ := ipv6.Encapsulate(coa, ha, 64, outer)
	wire2, _ := outer2.Encode()
	split2 := Split(outer2, len(wire2))
	if split2[ClassTunnel] != 2*ipv6.TunnelOverheadBytes {
		t.Errorf("nested overhead = %d", split2[ClassTunnel])
	}
}

func TestSplitFragments(t *testing.T) {
	// Tunnel fragment: whole frame is tunnel overhead.
	inner := dataPacket(true)
	outer, err := ipv6.Encapsulate(ipv6.MustParseAddr("2001:db8:4::1"), ipv6.MustParseAddr("2001:db8:6::99"), 64, inner)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := ipv6.Fragment(outer, ipv6.MinMTU, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Skip("packet too small to fragment at MinMTU")
	}
	for _, f := range frags {
		wire, _ := f.Encode()
		split := Split(f, len(wire))
		if split[ClassTunnel] != len(wire) {
			t.Fatalf("tunnel fragment split = %v", split)
		}
	}
	// Native multicast fragment: data.
	big := dataPacket(true)
	big.Payload = append(big.Payload, make([]byte, 3000)...)
	nf, err := ipv6.Fragment(big, ipv6.MinMTU, 10)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := nf[0].Encode()
	if split := Split(nf[0], len(wire)); split[ClassData] != len(wire) {
		t.Fatalf("native multicast fragment split = %v", split)
	}
	// Native unicast fragment: unicast.
	bigU := dataPacket(false)
	bigU.Payload = append(bigU.Payload, make([]byte, 3000)...)
	uf, _ := ipv6.Fragment(bigU, ipv6.MinMTU, 11)
	wire, _ = uf[0].Encode()
	if split := Split(uf[0], len(wire)); split[ClassUnicast] != len(wire) {
		t.Fatalf("native unicast fragment split = %v", split)
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("class %d has bad/duplicate name %q", c, s)
		}
		seen[s] = true
	}
}

func TestAccountant(t *testing.T) {
	s := sim.NewScheduler(1)
	net := netem.New(s)
	l := net.NewLink("L", 0, 0)
	a := net.NewNode("a", false)
	b := net.NewNode("b", false)
	ia := a.AddInterface(l)
	ib := b.AddInterface(l)
	src := ipv6.MustParseAddr("2001:db8:1::1")
	ia.AddAddr(src)
	g := ipv6.MustParseAddr("ff0e::101")
	ib.JoinGroup(g)

	acct := NewAccountant(net)
	pkt := dataPacket(true)
	wire, _ := pkt.Encode()
	_ = a.OutputOn(ia, pkt)
	s.Run()

	if acct.TotalBytes(ClassData) != uint64(len(wire)) {
		t.Fatalf("data bytes = %d, want %d", acct.TotalBytes(ClassData), len(wire))
	}
	if acct.TotalAll() != uint64(len(wire)) {
		t.Fatalf("total = %d", acct.TotalAll())
	}
	lc := acct.Of(l)
	if lc == nil || lc.Total() != uint64(len(wire)) || lc.Frames[ClassData] != 1 {
		t.Fatalf("link counters: %+v", lc)
	}
	if !strings.Contains(acct.Summary(), "L") {
		t.Error("summary missing link name")
	}
	// Watch is idempotent.
	acct.Watch(l)
	_ = a.OutputOn(ia, dataPacket(true))
	s.Run()
	if lc.Frames[ClassData] != 2 {
		t.Fatalf("double-watch double-counted: %d", lc.Frames[ClassData])
	}
	if len(acct.Snapshot()) != 1 {
		t.Fatalf("snapshot len = %d", len(acct.Snapshot()))
	}
}

func TestFlowProbe(t *testing.T) {
	p := NewFlowProbe("r")
	at := func(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }
	p.Record(1, at(1), 3)
	p.Record(2, at(2), 3)
	p.Record(2, at(2), 3) // duplicate
	p.Record(3, at(10), 5)
	p.Record(4, at(11), 5)

	if p.Count() != 4 {
		t.Fatalf("count = %d", p.Count())
	}
	if p.Duplicates != 1 {
		t.Fatalf("dups = %d", p.Duplicates)
	}
	if d, ok := p.FirstAfter(at(3)); !ok || d.Seq != 3 {
		t.Fatalf("FirstAfter = %+v, %v", d, ok)
	}
	if _, ok := p.FirstAfter(at(12)); ok {
		t.Fatal("FirstAfter past end returned ok")
	}
	if d, ok := p.LastBefore(at(10)); !ok || d.Seq != 2 {
		t.Fatalf("LastBefore = %+v", d)
	}
	if _, ok := p.LastBefore(at(1)); ok {
		t.Fatal("LastBefore before start returned ok")
	}
	if n := p.CountBetween(at(2), at(11)); n != 2 {
		t.Fatalf("CountBetween = %d", n)
	}
	if g := p.MaxGap(at(0), at(20)); g != sim.Time(8*time.Second) {
		t.Fatalf("MaxGap = %v", g)
	}
	if h := p.MeanHops(at(9), at(20)); h != 5 {
		t.Fatalf("MeanHops = %v", h)
	}
	if h := p.MeanHops(at(50), at(60)); h != 0 {
		t.Fatalf("MeanHops empty window = %v", h)
	}
}

func TestTableRendering(t *testing.T) {
	rows := []Row{
		{Label: "a", Values: map[string]float64{"x": 1, "y": 2.5}},
		{Label: "b-with-a-long-label", Values: map[string]float64{"x": 1234567}},
	}
	out := Table("demo", []string{"x", "y"}, rows)
	for _, want := range []string{"== demo ==", "a", "b-with-a-long-label", "1", "2.500", "1234567", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
