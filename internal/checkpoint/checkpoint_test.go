package checkpoint

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mip6mcast/internal/scenario"
)

func buildFig1(seed int64, until time.Duration) *scenario.Network {
	opt := scenario.DefaultOptions()
	opt.Seed = seed
	f := scenario.NewFigure1(opt)
	f.Run(until)
	return f
}

// A checkpoint captured at T verifies against an independently rebuilt
// timeline run to the same T, and Restore adopts it.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	f := buildFig1(42, 30*time.Second)
	meta := Meta{Experiment: "fig1", Seed: 42, Engine: "pimdm"}
	cp := Capture(f, meta)
	if cp.Time != f.Now() {
		t.Fatalf("checkpoint time %v, network at %v", cp.Time, f.Now())
	}
	if len(cp.Regions) != 1 || len(cp.Engines) == 0 || len(cp.Links) == 0 {
		t.Fatalf("checkpoint missing state: %d regions, %d engines, %d links",
			len(cp.Regions), len(cp.Engines), len(cp.Links))
	}

	restored, err := Restore(cp, func() (*scenario.Network, error) {
		return buildFig1(42, 30*time.Second), nil
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Now() != cp.Time {
		t.Fatalf("restored network at %v, want %v", restored.Now(), cp.Time)
	}
}

// A rebuild with the wrong seed must fail verification with a
// descriptive error, not silently produce a divergent tail.
func TestRestoreDetectsDivergentRebuild(t *testing.T) {
	cp := Capture(buildFig1(42, 30*time.Second), Meta{Experiment: "fig1", Seed: 42})
	_, err := Restore(cp, func() (*scenario.Network, error) {
		return buildFig1(43, 30*time.Second), nil
	})
	if err == nil {
		t.Fatal("Restore accepted a rebuild with the wrong seed")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence error not descriptive: %v", err)
	}
}

// A rebuild stopped at the wrong time must fail verification.
func TestRestoreDetectsWrongTime(t *testing.T) {
	cp := Capture(buildFig1(42, 30*time.Second), Meta{Seed: 42})
	_, err := Restore(cp, func() (*scenario.Network, error) {
		return buildFig1(42, 31*time.Second), nil
	})
	if err == nil || !strings.Contains(err.Error(), "time diverged") {
		t.Fatalf("want virtual-time divergence error, got %v", err)
	}
}

// Write/Read round-trips the artifact; tampering breaks the digest.
func TestArtifactRoundTripAndDigest(t *testing.T) {
	cp := Capture(buildFig1(7, 20*time.Second), Meta{Experiment: "fig1", Seed: 7})
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Digest != cp.Digest || back.Time != cp.Time {
		t.Fatalf("round trip changed artifact: digest %s vs %s", back.Digest, cp.Digest)
	}

	tampered := strings.Replace(buf.String(), `"seed": 7`, `"seed": 8`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper target not found in artifact")
	}
	if _, err := Read(strings.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered artifact not rejected: %v", err)
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := Meta{Experiment: "chaos", Params: map[string]string{"b": "2", "a": "1"}, Seed: 9, Engine: "pimdm"}
	b := Meta{Experiment: "chaos", Params: map[string]string{"a": "1", "b": "2"}, Seed: 9, Engine: "pimdm"}
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("cache key depends on param order: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	if a.CacheKey() == (Meta{Experiment: "chaos", Params: map[string]string{"a": "1", "b": "2"}, Seed: 10, Engine: "pimdm"}).CacheKey() {
		t.Fatal("cache key ignores seed")
	}
}
