package checkpoint

import (
	"bytes"
	"testing"
	"time"

	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
)

// fig1ProxyProgram is fig1Program with the hierarchical MLD-proxy
// subsystem enabled (depth 2 peels A and E into edge proxy domains
// anchored at B and D). R3's 12 s handover L4→L6 stays inside D's
// domain, so the run exercises the anchor-local path; the 22 s return
// crosses back the same way.
func fig1ProxyProgram(engineName string, seed int64, rec *obs.Recorder) *scenario.Network {
	opt := scenario.DefaultOptions()
	opt.Engine = engineName
	opt.Seed = seed
	opt.ProxyDepth = 2
	opt.Obs = rec
	f := scenario.NewFigure1(opt)
	f.At(sim.Time(2*time.Second), func() {
		for _, name := range []string{"R1", "R2", "R3"} {
			h := f.Hosts[name]
			h.MLD.Join(h.Iface, scenario.Group)
		}
	})
	f.SamplePeriodic(500*time.Millisecond, func() {
		f.SendLocalMulticast("S", scenario.Group, []byte("beacon"))
	})
	f.At(sim.Time(12*time.Second), func() { f.Move("R3", "L6") })
	f.At(sim.Time(22*time.Second), func() { f.Move("R3", "L4") })
	return f
}

// The determinism guarantee extends to mixed engine sets: a Figure 1
// run where A and E are mldproxy members and the core routers run the
// PIM engine checkpoints mid-flight and restores with a byte-identical
// tail, for both core engines.
func TestProxyCheckpointTailByteIdentical(t *testing.T) {
	const (
		mid = sim.Time(15 * time.Second)
		end = sim.Time(30 * time.Second)
	)
	for _, eng := range []string{"pimdm", "hpimdm"} {
		t.Run(eng, func(t *testing.T) {
			recA := obs.NewRecorder(nil)
			fA := fig1ProxyProgram(eng, 42, recA)
			fA.RunUntil(end)
			if fA.Proxy.Empty() || fA.ProxyOf("E") == nil {
				t.Fatal("proxy subsystem not active in the reference run")
			}
			if local, _ := fA.HandoverCounts(); local < 1 {
				t.Fatalf("reference run counted %d anchor-local handovers, want ≥1", local)
			}

			recB := obs.NewRecorder(nil)
			fB := fig1ProxyProgram(eng, 42, recB)
			fB.RunUntil(mid)
			cp := Capture(fB, Meta{Experiment: "fig1-proxy", Seed: 42, Engine: eng})

			// The capture must contain the proxy members' own engine
			// checkpoints, stamped with the mldproxy engine name.
			proxies := 0
			for _, rcp := range cp.Engines {
				if rcp.Engine == "mldproxy" {
					proxies++
				}
			}
			if proxies != 2 {
				t.Fatalf("checkpoint holds %d mldproxy engine snapshots, want 2 (A and E)", proxies)
			}

			var recC *obs.Recorder
			fC, err := Restore(cp, func() (*scenario.Network, error) {
				recC = obs.NewRecorder(nil)
				f := fig1ProxyProgram(eng, 42, recC)
				f.RunUntil(cp.Time)
				return f, nil
			})
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			fC.RunUntil(end)

			want := tailJSONL(t, recA.Events(), cp.Time)
			got := tailJSONL(t, recC.Events(), cp.Time)
			if len(got) == 0 {
				t.Fatal("restored proxy run recorded no events after the checkpoint")
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("restored proxy tail diverged:\nwant %d bytes, got %d bytes\nfirst want line: %s\nfirst got line:  %s",
					len(want), len(got), firstLine(want), firstLine(got))
			}

			// The 22 s return handover happens after the checkpoint: the
			// restored run must count it on the same (anchor-local) path.
			la, ha := fA.HandoverCounts()
			lc, hc := fC.HandoverCounts()
			if la != lc || ha != hc {
				t.Fatalf("handover counts diverged: reference %d/%d, restored %d/%d", la, ha, lc, hc)
			}
		})
	}
}

// shardedProxyProgram is shardedProgram with ProxyDepth=2 on a random
// tree (whose pendant routers the depth-2 peel turns into proxy
// domains), so edge routers run mldproxy inside a 4-shard parallel
// kernel.
func shardedProxyProgram(t *testing.T, seed int64, workers int, rec *obs.Recorder) *scenario.Network {
	t.Helper()
	g, err := topo.FromSpec("tree", 40, 7)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	lanI, lanJ := -1, -1
	for li, l := range g.Links {
		if !l.LAN {
			continue
		}
		if lanI < 0 {
			lanI = li
		} else {
			lanJ = li
			break
		}
	}
	if lanJ < 0 {
		t.Skip("generated graph has fewer than two LANs")
	}
	home, away := g.Links[lanI].Name, g.Links[lanJ].Name

	opt := scenario.DefaultOptions()
	opt.Seed = seed
	opt.Shards = 4
	opt.ShardWorkers = workers
	opt.CoreLinkDelay = 5 * time.Millisecond
	opt.MobilityGroups = [][]int{{lanI, lanJ}}
	opt.ProxyDepth = 2
	opt.Obs = rec
	f := scenario.Build(g, opt)
	if f.Part == nil || f.Part.N < 2 {
		t.Skip("graph collapsed to a single region")
	}
	if f.Proxy.Empty() {
		t.Skip("depth-2 peel found no proxy domains in the generated graph")
	}

	f.AddHost("mn0", home, 0xaa01)
	f.AddHost("rx0", away, 0xbb01)
	f.At(sim.Time(2*time.Second), func() {
		h := f.Hosts["rx0"]
		h.MLD.Join(h.Iface, scenario.Group)
	})
	f.SamplePeriodic(500*time.Millisecond, func() {
		f.SendLocalMulticast("mn0", scenario.Group, []byte("beacon"))
	})
	f.At(sim.Time(10*time.Second), func() { f.Move("mn0", away) })
	f.At(sim.Time(18*time.Second), func() { f.Move("mn0", home) })
	return f
}

// The sharded kernel preserves the proxy guarantee too: checkpoint at a
// barrier, restore with a different worker count, byte-identical tail.
func TestShardedProxyCheckpointTailByteIdentical(t *testing.T) {
	const (
		mid = sim.Time(12 * time.Second)
		end = sim.Time(24 * time.Second)
	)
	recA := obs.NewRecorder(nil)
	fA := shardedProxyProgram(t, 7, 1, recA)
	fA.RunUntil(end)

	recB := obs.NewRecorder(nil)
	fB := shardedProxyProgram(t, 7, 1, recB)
	fB.RunUntil(mid)
	cp := Capture(fB, Meta{Experiment: "ba-sharded-proxy", Seed: 7, Shards: 4})
	if len(cp.Regions) < 2 {
		t.Fatalf("sharded proxy checkpoint captured %d regions", len(cp.Regions))
	}
	proxies := 0
	for _, rcp := range cp.Engines {
		if rcp.Engine == "mldproxy" {
			proxies++
		}
	}
	if proxies == 0 {
		t.Fatal("sharded checkpoint holds no mldproxy engine snapshots")
	}

	var recC *obs.Recorder
	fC, err := Restore(cp, func() (*scenario.Network, error) {
		recC = obs.NewRecorder(nil)
		// More workers than the original run: must not change the timeline.
		f := shardedProxyProgram(t, 7, 4, recC)
		f.RunUntil(cp.Time)
		return f, nil
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	fC.RunUntil(end)

	want := tailJSONL(t, recA.Events(), cp.Time)
	got := tailJSONL(t, recC.Events(), cp.Time)
	if len(got) == 0 {
		t.Fatal("restored sharded proxy run recorded no events after the checkpoint")
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("sharded proxy restored tail diverged:\nwant %d bytes, got %d bytes\nfirst want line: %s\nfirst got line:  %s",
			len(want), len(got), firstLine(want), firstLine(got))
	}
}
