// Package checkpoint implements versioned timeline checkpoints: a
// deterministic snapshot of a running simulation's virtual time and all
// live state — scheduler queues and RNG stream positions per region,
// link/impairment/channel state, multicast engine state for every
// router via the engine.MulticastEngine Checkpoint/Restore contract,
// and the MLD/NDP/Mobile-IPv6 binding state.
//
// The restore model is replay-based, verify-and-adopt: closures (timer
// callbacks, in-flight deliveries) are never serialized. A checkpoint
// is restored by re-executing the run's deterministic construction and
// driver program up to the checkpoint's virtual time — after which the
// rebuilt timeline necessarily holds the same state, because the whole
// system is a pure function of (spec, seed) — and then verifying the
// rebuilt state against the snapshot field by field. Verification is
// what makes the checkpoint more than a cache key: it catches spec
// drift, binary drift, and non-deterministic rebuilds with a
// descriptive error instead of a silently divergent tail. Because the
// rebuilt run re-executes the identical event stream from time zero,
// its trace is byte-identical to the uninterrupted run's — from the
// beginning, and therefore in particular from the checkpoint onward —
// at any shard or worker count.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"reflect"
	"sort"

	"mip6mcast/internal/engine"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

// FormatVersion is the current checkpoint artifact format. Version 1 is
// the replay-verify format: it records declarative state for
// verification, not serialized closures. A future native-reload format
// would bump this.
const FormatVersion = 1

// Meta identifies the run a checkpoint belongs to — the same triple the
// result cache keys on, so a checkpoint can only ever be restored into
// a rebuild of the identical spec.
type Meta struct {
	Experiment string            `json:"experiment,omitempty"`
	Params     map[string]string `json:"params,omitempty"`
	Seed       int64             `json:"seed"`
	Shards     int               `json:"shards,omitempty"`
	Engine     string            `json:"engine,omitempty"`
}

// CacheKey renders the meta as the canonical cache key:
// experiment|k=v|...|seed=N|engine=E|shards=S with params sorted by
// key. mip6simd keys both its result cache and checkpoint store on it.
func (m Meta) CacheKey() string {
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := m.Experiment
	for _, k := range keys {
		key += "|" + k + "=" + m.Params[k]
	}
	key += fmt.Sprintf("|seed=%d", m.Seed)
	if m.Engine != "" {
		key += "|engine=" + m.Engine
	}
	if m.Shards > 1 {
		key += fmt.Sprintf("|shards=%d", m.Shards)
	}
	return key
}

// RegionState is one region scheduler's position: how many events it
// has executed, the next event sequence number, the position of every
// random stream, and the pending event queue as declarative
// (time, seq, tag) specs. Sequential runs have exactly one region.
type RegionState struct {
	Region     int                `json:"region"`
	Processed  uint64             `json:"processed"`
	SeqCounter uint64             `json:"seq_counter"`
	Streams    []sim.StreamPos    `json:"streams,omitempty"`
	Pending    []sim.PendingEvent `json:"pending,omitempty"`
}

// Checkpoint is the versioned snapshot artifact.
type Checkpoint struct {
	Format  int           `json:"format"`
	Meta    Meta          `json:"meta"`
	Time    sim.Time      `json:"t_ns"`
	Regions []RegionState `json:"regions"`
	// Links holds every link half's state in construction order
	// (split-link far halves follow their primary).
	Links []netem.LinkState `json:"links,omitempty"`
	// Engines holds every router's engine snapshot in construction order.
	Engines []engine.EngineCheckpoint `json:"engines,omitempty"`
	// MLD maps router name to its membership-state digest.
	MLD map[string][]string `json:"mld,omitempty"`
	// HomeAgents maps router name to its binding-cache digests, each line
	// prefixed with the home link it serves.
	HomeAgents map[string][]string `json:"home_agents,omitempty"`
	// Mobiles maps host name to its registration-state digest.
	Mobiles map[string]string `json:"mobiles,omitempty"`
	// Digest is the FNV-1a 64 hash of the artifact's canonical JSON with
	// this field blank — a cheap end-to-end integrity check.
	Digest string `json:"digest,omitempty"`
}

// Capture snapshots the network's complete live state at its current
// virtual time. On a sharded run, call only between RunUntil calls
// (i.e. at a kernel barrier), when every region clock is equal and no
// window is executing.
func Capture(f *scenario.Network, meta Meta) *Checkpoint {
	cp := &Checkpoint{
		Format:     FormatVersion,
		Meta:       meta,
		Time:       f.Now(),
		MLD:        map[string][]string{},
		HomeAgents: map[string][]string{},
		Mobiles:    map[string]string{},
	}
	for i, s := range f.Scheds() {
		cp.Regions = append(cp.Regions, RegionState{
			Region:     i,
			Processed:  s.Processed(),
			SeqCounter: s.SeqCounter(),
			Streams:    s.StreamPositions(),
			Pending:    s.PendingEvents(),
		})
	}
	for _, name := range f.LinkOrder() {
		l := f.Links[name]
		cp.Links = append(cp.Links, l.CheckpointState())
		if p := l.Peer(); p != nil {
			cp.Links = append(cp.Links, p.CheckpointState())
		}
	}
	for _, name := range f.RouterOrder() {
		r := f.Routers[name]
		if r.Engine != nil {
			cp.Engines = append(cp.Engines, r.Engine.Checkpoint())
		}
		if r.MLD != nil {
			cp.MLD[name] = r.MLD.Snapshot()
		}
		var has []string
		for _, ln := range r.HALinks() {
			for _, line := range r.HAs[ln].Snapshot() {
				has = append(has, ln+" "+line)
			}
		}
		if len(has) > 0 {
			cp.HomeAgents[name] = has
		}
	}
	hosts := make([]string, 0, len(f.Hosts))
	for name := range f.Hosts {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	for _, name := range hosts {
		if mn := f.Hosts[name].MN; mn != nil {
			cp.Mobiles[name] = mn.Snapshot()
		}
	}
	cp.Digest = cp.ComputeDigest()
	return cp
}

// ComputeDigest hashes the artifact's canonical JSON (Digest blanked)
// with FNV-1a 64.
func (cp *Checkpoint) ComputeDigest() string {
	c := *cp
	c.Digest = ""
	data, err := json.Marshal(&c)
	if err != nil {
		panic(fmt.Sprintf("checkpoint: digest marshal: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Verify recaptures the network's state and compares it against cp
// field by field, reporting the first divergence as a descriptive error
// (nil when identical). It is the integrity half of the restore
// contract: Restore calls it after the rebuild.
func Verify(f *scenario.Network, cp *Checkpoint) error {
	if cp.Format != FormatVersion {
		return fmt.Errorf("checkpoint: format %d not supported (this build reads format %d)", cp.Format, FormatVersion)
	}
	if cp.Digest != "" {
		if got := cp.ComputeDigest(); got != cp.Digest {
			return fmt.Errorf("checkpoint: artifact digest mismatch: recorded %s, computed %s (corrupt or hand-edited artifact)", cp.Digest, got)
		}
	}
	got := Capture(f, cp.Meta)
	if got.Time != cp.Time {
		return fmt.Errorf("checkpoint: virtual time diverged: checkpoint at %v, timeline at %v", cp.Time, got.Time)
	}
	if len(got.Regions) != len(cp.Regions) {
		return fmt.Errorf("checkpoint: region count diverged: checkpoint has %d, timeline has %d (shards mismatch?)", len(cp.Regions), len(got.Regions))
	}
	for i := range cp.Regions {
		if err := verifyRegion(cp.Regions[i], got.Regions[i]); err != nil {
			return err
		}
	}
	if len(got.Links) != len(cp.Links) {
		return fmt.Errorf("checkpoint: link count diverged: checkpoint has %d, timeline has %d", len(cp.Links), len(got.Links))
	}
	for i := range cp.Links {
		if !linkStateEqual(cp.Links[i], got.Links[i]) {
			return fmt.Errorf("checkpoint: link %s state diverged:\n  checkpoint: %+v\n  rebuilt:    %+v", cp.Links[i].Name, cp.Links[i], got.Links[i])
		}
	}
	if len(got.Engines) != len(cp.Engines) {
		return fmt.Errorf("checkpoint: engine count diverged: checkpoint has %d, timeline has %d", len(cp.Engines), len(got.Engines))
	}
	for i := range cp.Engines {
		if err := engine.VerifyCheckpoint(cp.Engines[i], got.Engines[i]); err != nil {
			return err
		}
	}
	if err := verifyDigests("MLD state", cp.MLD, got.MLD); err != nil {
		return err
	}
	if err := verifyDigests("home-agent bindings", cp.HomeAgents, got.HomeAgents); err != nil {
		return err
	}
	for name, want := range cp.Mobiles {
		if g, ok := got.Mobiles[name]; !ok || g != want {
			return fmt.Errorf("checkpoint: mobile node %s diverged:\n  checkpoint: %s\n  rebuilt:    %s", name, want, g)
		}
	}
	if len(got.Mobiles) != len(cp.Mobiles) {
		return fmt.Errorf("checkpoint: mobile node count diverged: checkpoint has %d, timeline has %d", len(cp.Mobiles), len(got.Mobiles))
	}
	return nil
}

func verifyRegion(want, got RegionState) error {
	if want.Processed != got.Processed {
		return fmt.Errorf("checkpoint: region %d processed-event count diverged: checkpoint %d, rebuilt %d", want.Region, want.Processed, got.Processed)
	}
	if want.SeqCounter != got.SeqCounter {
		return fmt.Errorf("checkpoint: region %d event sequence counter diverged: checkpoint %d, rebuilt %d", want.Region, want.SeqCounter, got.SeqCounter)
	}
	if len(want.Streams) != len(got.Streams) {
		return fmt.Errorf("checkpoint: region %d stream set diverged: checkpoint %v, rebuilt %v", want.Region, want.Streams, got.Streams)
	}
	for i := range want.Streams {
		if want.Streams[i] != got.Streams[i] {
			return fmt.Errorf("checkpoint: region %d random stream %q position diverged: checkpoint %d draws, rebuilt %d draws",
				want.Region, want.Streams[i].Name, want.Streams[i].Draws, got.Streams[i].Draws)
		}
	}
	if len(want.Pending) != len(got.Pending) {
		return fmt.Errorf("checkpoint: region %d pending event count diverged: checkpoint %d, rebuilt %d", want.Region, len(want.Pending), len(got.Pending))
	}
	for i := range want.Pending {
		if want.Pending[i] != got.Pending[i] {
			return fmt.Errorf("checkpoint: region %d pending event %d diverged:\n  checkpoint: %+v\n  rebuilt:    %+v", want.Region, i, want.Pending[i], got.Pending[i])
		}
	}
	return nil
}

func linkStateEqual(a, b netem.LinkState) bool {
	return reflect.DeepEqual(a, b)
}

func verifyDigests(what string, want, got map[string][]string) error {
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			return fmt.Errorf("checkpoint: %s on %s diverged:\n  checkpoint: %v\n  rebuilt:    %v", what, name, w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				return fmt.Errorf("checkpoint: %s on %s diverged at line %d:\n  checkpoint: %s\n  rebuilt:    %s", what, name, i, w[i], g[i])
			}
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("checkpoint: %s router set diverged: checkpoint has %d routers, timeline has %d", what, len(want), len(got))
	}
	return nil
}

// Restore rebuilds a timeline from cp: rebuild must re-execute the
// run's deterministic construction and driver program up to cp.Time
// (and no further), after which the returned network is verified
// against the snapshot. A verification failure means the rebuild
// diverged — wrong spec, wrong seed, wrong binary — and the restored
// timeline must not be trusted.
func Restore(cp *Checkpoint, rebuild func() (*scenario.Network, error)) (*scenario.Network, error) {
	f, err := rebuild()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuild failed: %w", err)
	}
	if err := Verify(f, cp); err != nil {
		return nil, fmt.Errorf("checkpoint: restored timeline diverged from checkpoint: %w", err)
	}
	return f, nil
}

// Write serializes cp as indented JSON.
func Write(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// Read deserializes a checkpoint and validates its format version and
// digest.
func Read(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if cp.Format != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format %d not supported (this build reads format %d)", cp.Format, FormatVersion)
	}
	if cp.Digest != "" {
		if got := cp.ComputeDigest(); got != cp.Digest {
			return nil, fmt.Errorf("checkpoint: artifact digest mismatch: recorded %s, computed %s", cp.Digest, got)
		}
	}
	return &cp, nil
}

// Save writes the checkpoint to path.
func (cp *Checkpoint) Save(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(file, cp); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return Read(file)
}
