package checkpoint

import (
	"bytes"
	"testing"
	"time"

	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
)

// fig1Program builds the canonical scripted Figure 1 timeline used by the
// determinism tests: receivers join at 2 s, the source beacons every
// 500 ms, R3 hands over to a foreign link at 12 s and returns home at
// 22 s. Everything — construction and driver script — derives from
// (engine, seed), which is what makes the timeline replayable.
func fig1Program(engineName string, seed int64, rec *obs.Recorder) *scenario.Network {
	opt := scenario.DefaultOptions()
	opt.Engine = engineName
	opt.Seed = seed
	opt.Obs = rec
	f := scenario.NewFigure1(opt)
	f.At(sim.Time(2*time.Second), func() {
		for _, name := range []string{"R1", "R2", "R3"} {
			h := f.Hosts[name]
			h.MLD.Join(h.Iface, scenario.Group)
		}
	})
	f.SamplePeriodic(500*time.Millisecond, func() {
		f.SendLocalMulticast("S", scenario.Group, []byte("beacon"))
	})
	f.At(sim.Time(12*time.Second), func() { f.Move("R3", "L6") })
	f.At(sim.Time(22*time.Second), func() { f.Move("R3", "L4") })
	return f
}

// tailJSONL serializes the events strictly after t as JSONL bytes.
func tailJSONL(t *testing.T, events []obs.Event, after sim.Time) []byte {
	t.Helper()
	var tail []obs.Event
	for _, e := range events {
		if e.At > after {
			tail = append(tail, e)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, tail); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// The golden determinism guarantee: checkpoint a fig1 run mid-flight,
// restore it in "another process" (a fresh rebuild), continue — and the
// trace from the checkpoint onward is byte-identical to the uninterrupted
// run's, for both engines. The post-checkpoint handover at 22 s must
// appear in the restored tail, proving pending driver events survive.
func TestFig1CheckpointTailByteIdentical(t *testing.T) {
	const (
		mid = sim.Time(15 * time.Second)
		end = sim.Time(30 * time.Second)
	)
	for _, eng := range []string{"pimdm", "hpimdm"} {
		t.Run(eng, func(t *testing.T) {
			// Uninterrupted reference run.
			recA := obs.NewRecorder(nil)
			fA := fig1Program(eng, 42, recA)
			fA.RunUntil(end)

			// Interrupted run: stop at mid and capture.
			recB := obs.NewRecorder(nil)
			fB := fig1Program(eng, 42, recB)
			fB.RunUntil(mid)
			cp := Capture(fB, Meta{Experiment: "fig1", Seed: 42, Engine: eng})

			// Restore from the artifact by replaying the program, then
			// continue to the end.
			var recC *obs.Recorder
			fC, err := Restore(cp, func() (*scenario.Network, error) {
				recC = obs.NewRecorder(nil)
				f := fig1Program(eng, 42, recC)
				f.RunUntil(cp.Time)
				return f, nil
			})
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			fC.RunUntil(end)

			want := tailJSONL(t, recA.Events(), cp.Time)
			got := tailJSONL(t, recC.Events(), cp.Time)
			if len(got) == 0 {
				t.Fatal("restored run recorded no events after the checkpoint")
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("restored tail diverged from uninterrupted run:\nwant %d bytes, got %d bytes\nfirst want line: %s\nfirst got line:  %s",
					len(want), len(got), firstLine(want), firstLine(got))
			}

			// The 22 s handover is after the checkpoint; the restored run
			// must have executed it from its replayed pending queue.
			sawLate := false
			for _, e := range recC.Events() {
				if e.At > sim.Time(22*time.Second) {
					sawLate = true
					break
				}
			}
			if !sawLate {
				t.Fatal("no events after the 22s post-checkpoint handover")
			}

			// Replay determinism also makes the full streams identical.
			var fullA, fullC bytes.Buffer
			if err := recA.WriteJSONL(&fullA); err != nil {
				t.Fatal(err)
			}
			if err := recC.WriteJSONL(&fullC); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fullA.Bytes(), fullC.Bytes()) {
				t.Fatal("full restored stream differs from uninterrupted run")
			}
		})
	}
}

// shardedProgram builds a 4-region Barabási–Albert network with a mobile
// host whose home and foreign LANs are pinned to one region via
// MobilityGroups, a fixed receiver, periodic traffic, and two scripted
// handovers. workers varies only goroutine fan-in, never the timeline.
func shardedProgram(t *testing.T, seed int64, workers int, rec *obs.Recorder) (*scenario.Network, string, string) {
	t.Helper()
	g, err := topo.FromSpec("ba", 40, 7)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	// Two LAN links, chosen from the graph alone (pre-partition) so every
	// build of this program picks the same pair.
	lanI, lanJ := -1, -1
	for li, l := range g.Links {
		if !l.LAN {
			continue
		}
		if lanI < 0 {
			lanI = li
		} else {
			lanJ = li
			break
		}
	}
	if lanJ < 0 {
		t.Skip("generated graph has fewer than two LANs")
	}
	home, away := g.Links[lanI].Name, g.Links[lanJ].Name

	opt := scenario.DefaultOptions()
	opt.Seed = seed
	opt.Shards = 4
	opt.ShardWorkers = workers
	opt.CoreLinkDelay = 5 * time.Millisecond
	opt.MobilityGroups = [][]int{{lanI, lanJ}}
	opt.Obs = rec
	f := scenario.Build(g, opt)
	if f.Part == nil || f.Part.N < 2 {
		t.Skip("graph collapsed to a single region")
	}

	f.AddHost("mn0", home, 0xaa01)
	f.AddHost("rx0", away, 0xbb01)
	f.At(sim.Time(2*time.Second), func() {
		h := f.Hosts["rx0"]
		h.MLD.Join(h.Iface, scenario.Group)
	})
	f.SamplePeriodic(500*time.Millisecond, func() {
		f.SendLocalMulticast("mn0", scenario.Group, []byte("beacon"))
	})
	f.At(sim.Time(10*time.Second), func() { f.Move("mn0", away) })
	f.At(sim.Time(18*time.Second), func() { f.Move("mn0", home) })
	return f, home, away
}

// The same guarantee under the sharded kernel: checkpoint at a barrier,
// restore with a different worker count, and the tail stays
// byte-identical — shard workers parallelize wall-clock, not the timeline.
func TestShardedCheckpointTailByteIdentical(t *testing.T) {
	const (
		mid = sim.Time(12 * time.Second)
		end = sim.Time(24 * time.Second)
	)
	recA := obs.NewRecorder(nil)
	fA, _, _ := shardedProgram(t, 7, 1, recA)
	fA.RunUntil(end)

	recB := obs.NewRecorder(nil)
	fB, _, _ := shardedProgram(t, 7, 1, recB)
	fB.RunUntil(mid)
	cp := Capture(fB, Meta{Experiment: "ba-sharded", Seed: 7, Shards: 4})
	if len(cp.Regions) < 2 {
		t.Fatalf("sharded checkpoint captured %d regions", len(cp.Regions))
	}

	var recC *obs.Recorder
	fC, err := Restore(cp, func() (*scenario.Network, error) {
		recC = obs.NewRecorder(nil)
		// More workers than the original run: must not change the timeline.
		f, _, _ := shardedProgram(t, 7, 4, recC)
		f.RunUntil(cp.Time)
		return f, nil
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	fC.RunUntil(end)

	want := tailJSONL(t, recA.Events(), cp.Time)
	got := tailJSONL(t, recC.Events(), cp.Time)
	if len(got) == 0 {
		t.Fatal("restored sharded run recorded no events after the checkpoint")
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("sharded restored tail diverged:\nwant %d bytes, got %d bytes\nfirst want line: %s\nfirst got line:  %s",
			len(want), len(got), firstLine(want), firstLine(got))
	}
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}
