package scenario

import (
	"fmt"

	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/routing"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
	"mip6mcast/internal/trace"
)

// Build wires a topo.Graph into a Network with the full protocol stack:
// links in graph order (link i gets prefix 2001:db8:i+1::/64), routers
// in graph order with interfaces in each router's declared link order,
// unicast SPF tables, then PIM-DM / MLD / NDP engines and home agents
// per the graph's designations. Construction order is a pure function of
// the graph and options, so equal (graph, options, seed) always produce
// the same event timeline — NewFigure1 is pinned byte-for-byte against
// this build by the golden-trace test.
//
// populate hooks run after the routers come up but before the
// accountant and recorder attach — the window where hosts must be added
// so that observer baselines and taps land in the same order the
// original hand-wired constructor produced.
func Build(g *topo.Graph, opt Options, populate ...func(*Network)) *Network {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	if len(g.Links) > 9999 {
		// Prefix(i) formats the 1-based link number in decimal into one
		// hex group; five digits would not parse.
		panic(fmt.Sprintf("scenario: %d links exceeds the 9999 the prefix scheme can number", len(g.Links)))
	}
	f := &Network{
		Opt:     opt,
		Links:   map[string]*netem.Link{},
		Routers: map[string]*Router{},
		Hosts:   map[string]*Host{},
		Topo:    g,
		haFor:   map[string]string{},
	}

	// Mobility groups are validated against the graph at every shard
	// count (not just the sharded path): a spec wrong on the sequential
	// path would start panicking the moment the same experiment is run
	// with -shards, which is exactly the late surprise this guards against.
	if err := topo.ValidateMobilityGroups(g, opt.MobilityGroups); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}

	// Sharded path: partition the router graph into regions, one scheduler
	// each, under a conservative kernel. A graph that collapses to a single
	// region (Figure 1: all links are LANs) falls back to the sequential
	// path — no kernel, byte-identical to Shards=0.
	var linkRegion []int
	if opt.Shards > 1 {
		part := topo.PartitionGraph(g, opt.Shards, opt.MobilityGroups)
		if part.N > 1 {
			f.Part = part
			linkRegion = part.LinkRegion(g)
			f.regionScheds = make([]*sim.Scheduler, part.N)
			for i := range f.regionScheds {
				// Region 0 keeps the raw run seed so a hypothetical
				// one-region kernel would reproduce the sequential
				// timeline; the rest get decorrelated derived seeds.
				seed := opt.Seed
				if i > 0 {
					seed = sim.DeriveSeed(opt.Seed, fmt.Sprintf("region-%d", i))
				}
				f.regionScheds[i] = sim.NewScheduler(seed)
			}
			// Every cross-region link is a core link, so the core delay is
			// the smallest cross-region latency — the kernel's lookahead.
			look := opt.CoreLinkDelay
			if look <= 0 {
				look = opt.LinkDelay
			}
			if look <= 0 {
				panic("scenario: sharded build needs a positive CoreLinkDelay (or LinkDelay) as kernel lookahead")
			}
			f.Kern = sim.NewKernel(f.regionScheds, look, opt.ShardWorkers)
			f.Sched = f.regionScheds[0]
			if opt.Obs != nil {
				// First barrier fold: merge region recorder children into
				// the root stream before any action or sampler appends
				// barrier-time events (keeps the stream chronological).
				f.Kern.OnBarrier(opt.Obs.MergeShards)
			}
		}
	}
	if f.Sched == nil {
		f.Sched = sim.NewScheduler(opt.Seed)
	}
	f.Net = netem.New(f.Sched)
	if f.Part != nil {
		f.Net.SetRegions(f.Part.N)
	}
	f.Dom = routing.NewDomain(f.Net)

	for i, spec := range g.Links {
		delay := opt.LinkDelay
		if opt.CoreLinkDelay > 0 && !spec.LAN {
			// Applied at every shard count, so sequential and sharded
			// cells of one experiment model the same network.
			delay = opt.CoreLinkDelay
		}
		l := f.Net.NewLink(spec.Name, opt.LinkBandwidth, delay)
		l.MTU = opt.LinkMTU
		if f.Part != nil {
			if r := linkRegion[i]; r >= 0 {
				l.SetSched(f.regionScheds[r])
			} else {
				// Region-spanning link: split into paired half-links, one
				// per endpoint region (the partitioner guarantees exactly
				// two routers and no LAN here).
				ends := g.RoutersOn(i)
				l.SetSched(f.regionScheds[f.Part.Region[ends[0]]])
				peer := f.Net.SplitLink(l)
				peer.SetSched(f.regionScheds[f.Part.Region[ends[1]]])
			}
		}
		f.Links[spec.Name] = l
		f.linkOrder = append(f.linkOrder, spec.Name)
		f.Dom.AssignPrefix(l, Prefix(i+1))
		if ha := g.HomeAgent[i]; ha >= 0 {
			f.haFor[spec.Name] = g.Routers[ha].Name
		}
	}

	for ri, rs := range g.Routers {
		node := f.Net.NewNode(rs.Name, true)
		if f.Part != nil {
			node.SetSched(f.regionScheds[f.Part.Region[ri]])
		}
		r := &Router{Node: node, HAs: map[string]*mipv6.HomeAgent{}}
		f.Routers[rs.Name] = r
		f.routerOrder = append(f.routerOrder, rs.Name)
		for _, li := range rs.Links {
			link := f.Links[g.Links[li].Name]
			attach := link
			if p := link.Peer(); p != nil && link.Sched() != node.Sched() {
				// Split link whose primary half lives in another region:
				// this router attaches to its own region's half.
				attach = p
			}
			ifc := node.AddInterface(attach)
			p, _ := f.Dom.PrefixOf(link)
			// Router addresses: <prefix>::aX where X encodes the router.
			ifc.AddAddr(p.WithInterfaceID(0xa0 + uint64(ri+1)))
		}
	}
	f.Dom.Recompute()

	// Hierarchical MLD-proxy plan (approach #5). Explicit graph
	// designations win; otherwise domains are peeled automatically up to
	// the configured depth. Resolved before any router's protocol stack
	// starts, because startRouterProtocols consults it per router.
	if opt.ProxyDepth > 0 {
		doms := g.ProxyDomains
		if len(doms) == 0 {
			doms = topo.AutoProxyDomains(g, opt.ProxyDepth)
		}
		plan, err := topo.BuildProxyPlan(g, doms)
		if err != nil {
			panic(fmt.Sprintf("scenario: %v", err))
		}
		f.Proxy = plan
	}

	for _, name := range f.routerOrder {
		f.startRouterProtocols(name)
	}

	for _, fn := range populate {
		fn(f)
	}

	f.Acct = metrics.NewAccountant(f.Net)
	if opt.Instrument {
		f.Sched.Instrument()
	}
	if opt.ProfileLabels {
		f.Sched.LabelProfiles()
	}
	if opt.Obs != nil {
		f.AttachRecorder(opt.Obs)
		trace.RecordLinks(opt.Obs, f.Net, nil)
	}
	// A registry serves exactly one timeline; when one options value
	// builds several networks (multi-variant experiments), only the first
	// network gets the samplers.
	if opt.Telemetry != nil && !opt.Telemetry.Started() {
		attachTelemetry(f)
	}
	if opt.OnNetwork != nil {
		opt.OnNetwork(f)
	}
	return f
}
