package scenario

import (
	"fmt"

	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/routing"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
	"mip6mcast/internal/trace"
)

// Build wires a topo.Graph into a Network with the full protocol stack:
// links in graph order (link i gets prefix 2001:db8:i+1::/64), routers
// in graph order with interfaces in each router's declared link order,
// unicast SPF tables, then PIM-DM / MLD / NDP engines and home agents
// per the graph's designations. Construction order is a pure function of
// the graph and options, so equal (graph, options, seed) always produce
// the same event timeline — NewFigure1 is pinned byte-for-byte against
// this build by the golden-trace test.
//
// populate hooks run after the routers come up but before the
// accountant and recorder attach — the window where hosts must be added
// so that observer baselines and taps land in the same order the
// original hand-wired constructor produced.
func Build(g *topo.Graph, opt Options, populate ...func(*Network)) *Network {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	if len(g.Links) > 9999 {
		// Prefix(i) formats the 1-based link number in decimal into one
		// hex group; five digits would not parse.
		panic(fmt.Sprintf("scenario: %d links exceeds the 9999 the prefix scheme can number", len(g.Links)))
	}
	f := &Network{
		Opt:     opt,
		Sched:   sim.NewScheduler(opt.Seed),
		Links:   map[string]*netem.Link{},
		Routers: map[string]*Router{},
		Hosts:   map[string]*Host{},
		Topo:    g,
		haFor:   map[string]string{},
	}
	f.Net = netem.New(f.Sched)
	f.Dom = routing.NewDomain(f.Net)

	for i, spec := range g.Links {
		l := f.Net.NewLink(spec.Name, opt.LinkBandwidth, opt.LinkDelay)
		l.MTU = opt.LinkMTU
		f.Links[spec.Name] = l
		f.linkOrder = append(f.linkOrder, spec.Name)
		f.Dom.AssignPrefix(l, Prefix(i+1))
		if ha := g.HomeAgent[i]; ha >= 0 {
			f.haFor[spec.Name] = g.Routers[ha].Name
		}
	}

	for ri, rs := range g.Routers {
		node := f.Net.NewNode(rs.Name, true)
		r := &Router{Node: node, HAs: map[string]*mipv6.HomeAgent{}}
		f.Routers[rs.Name] = r
		f.routerOrder = append(f.routerOrder, rs.Name)
		for _, li := range rs.Links {
			link := f.Links[g.Links[li].Name]
			ifc := node.AddInterface(link)
			p, _ := f.Dom.PrefixOf(link)
			// Router addresses: <prefix>::aX where X encodes the router.
			ifc.AddAddr(p.WithInterfaceID(0xa0 + uint64(ri+1)))
		}
	}
	f.Dom.Recompute()

	for _, name := range f.routerOrder {
		f.startRouterProtocols(name)
	}

	for _, fn := range populate {
		fn(f)
	}

	f.Acct = metrics.NewAccountant(f.Net)
	if opt.Instrument {
		f.Sched.Instrument()
	}
	if opt.ProfileLabels {
		f.Sched.LabelProfiles()
	}
	if opt.Obs != nil {
		f.AttachRecorder(opt.Obs)
		trace.RecordLinks(opt.Obs, f.Net, nil)
	}
	// A registry serves exactly one timeline; when one options value
	// builds several networks (multi-variant experiments), only the first
	// network gets the samplers.
	if opt.Telemetry != nil && !opt.Telemetry.Started() {
		attachTelemetry(f)
	}
	if opt.OnNetwork != nil {
		opt.OnNetwork(f)
	}
	return f
}
