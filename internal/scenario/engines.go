package scenario

import (
	"fmt"
	"sort"

	"mip6mcast/internal/engine"
	"mip6mcast/internal/hpimdm"
	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/pimdm"
)

// EngineBuilder constructs one router's multicast engine from the build
// options. Builders derive any engine-specific configuration from
// Options (hpimdm maps the shared PIM timer set onto its own config), so
// a single Options value drives every engine the same scenario compares.
type EngineBuilder func(node *netem.Node, opt Options, rt engine.UnicastRouting) engine.MulticastEngine

var engineBuilders = map[string]EngineBuilder{}

// RegisterEngine adds a multicast engine to the registry under name.
// Registration happens at init time; duplicate names panic.
func RegisterEngine(name string, b EngineBuilder) {
	if _, dup := engineBuilders[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate engine %q", name))
	}
	engineBuilders[name] = b
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineBuilders))
	for n := range engineBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EngineName resolves the effective engine selection: the zero value
// selects classic PIM-DM, keeping every pre-registry caller (and the
// golden traces they pinned) unchanged.
func (o Options) EngineName() string {
	if o.Engine == "" {
		return "pimdm"
	}
	return o.Engine
}

// buildEngine constructs the selected engine; unknown names panic (the
// experiment layer validates user input before any network is built, so
// reaching here with a bad name is a programming error).
func buildEngine(node *netem.Node, opt Options, rt engine.UnicastRouting) engine.MulticastEngine {
	b, ok := engineBuilders[opt.EngineName()]
	if !ok {
		panic(fmt.Sprintf("scenario: unknown multicast engine %q (registered: %v)", opt.EngineName(), EngineNames()))
	}
	return b(node, opt, rt)
}

// proxyStubRouting wraps a core router's unicast table in proxy-hierarchy
// builds: an RPF lookup that resolves through an intra-domain link reports
// no upstream neighbor, because the only routers there are MLD proxies,
// which speak no PIM. The engine then treats such sources exactly like
// directly-attached ones — it never prunes or grafts into the void (the
// proxy up-forwards unconditionally anyway) and originates State Refresh
// as the first multicast router above the domain.
type proxyStubRouting struct {
	engine.UnicastRouting
	linkDomain map[string]string
}

func (p proxyStubRouting) RPFInterface(src ipv6.Addr) (*netem.Interface, ipv6.Addr, bool) {
	ifc, nbr, ok := p.UnicastRouting.RPFInterface(src)
	if ok && ifc != nil && ifc.Link != nil {
		if _, in := p.linkDomain[ifc.Link.Name]; in {
			nbr = ipv6.Addr{}
		}
	}
	return ifc, nbr, ok
}

func init() {
	RegisterEngine("pimdm", func(node *netem.Node, opt Options, rt engine.UnicastRouting) engine.MulticastEngine {
		return pimdm.New(node, opt.PIM, rt)
	})
	RegisterEngine("hpimdm", func(node *netem.Node, opt Options, rt engine.UnicastRouting) engine.MulticastEngine {
		return hpimdm.New(node, hpimdm.FromPIM(opt.PIM), rt)
	})
}
