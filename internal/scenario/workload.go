// Package scenario assembles the paper's reference network (its Figure 1)
// with the full protocol stack on every node — unicast routing, PIM-DM,
// MLD, NDP router discovery, Mobile IPv6 home agents and mobile nodes —
// plus workload generation and measurement probes. The experiment harness
// and the benchmarks build every run on top of it.
package scenario

import (
	"encoding/binary"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/sim"
)

// WorkloadPort is the UDP port multicast application traffic uses.
const WorkloadPort = 9000

// beaconMagic identifies workload payloads on the wire.
var beaconMagic = [4]byte{'M', 'C', '6', 'M'}

// Beacon is the measurable content of every workload datagram.
type Beacon struct {
	Flow   uint16
	Seq    uint64
	SentAt sim.Time
}

// beaconLen is the encoded size before padding.
const beaconLen = 4 + 2 + 8 + 8

// Marshal encodes the beacon padded to size bytes (minimum beaconLen).
func (b Beacon) Marshal(size int) []byte {
	if size < beaconLen {
		size = beaconLen
	}
	out := make([]byte, size)
	copy(out[0:4], beaconMagic[:])
	binary.BigEndian.PutUint16(out[4:6], b.Flow)
	binary.BigEndian.PutUint64(out[6:14], b.Seq)
	binary.BigEndian.PutUint64(out[14:22], uint64(b.SentAt))
	return out
}

// ParseBeacon decodes a workload payload.
func ParseBeacon(p []byte) (Beacon, bool) {
	if len(p) < beaconLen || [4]byte(p[0:4]) != beaconMagic {
		return Beacon{}, false
	}
	return Beacon{
		Flow:   binary.BigEndian.Uint16(p[4:6]),
		Seq:    binary.BigEndian.Uint64(p[6:14]),
		SentAt: sim.Time(binary.BigEndian.Uint64(p[14:22])),
	}, true
}

// CBR is a constant-bit-rate workload source. It does not know how to put
// packets on the wire — the Send function (a local multicast send, or a
// reverse-tunneled send, depending on the approach under test) is injected.
type CBR struct {
	Flow     uint16
	Interval time.Duration
	Size     int // payload bytes per datagram
	Send     func(payload []byte)

	Sent   uint64
	ticker *sim.Ticker
	sched  *sim.Scheduler
}

// NewCBR starts a CBR source immediately (first datagram after one
// interval).
func NewCBR(s *sim.Scheduler, flow uint16, interval time.Duration, size int, send func(payload []byte)) *CBR {
	c := &CBR{Flow: flow, Interval: interval, Size: size, Send: send, sched: s}
	c.ticker = sim.NewTicker(s, interval, 0, c.emit)
	return c
}

func (c *CBR) emit() {
	c.Sent++
	b := Beacon{Flow: c.Flow, Seq: c.Sent, SentAt: c.sched.Now()}
	c.Send(b.Marshal(c.Size))
}

// Stop silences the source.
func (c *CBR) Stop() { c.ticker.Stop() }

// BitRate returns the source's nominal IP-layer bit rate.
func (c *CBR) BitRate() float64 {
	frame := ipv6.HeaderLen + ipv6.UDPHeaderLen + c.Size
	return float64(frame*8) / c.Interval.Seconds()
}

// AttachProbe wires a metrics.FlowProbe to a host: every workload datagram
// delivered to the host (directly or via tunnel) is recorded with its
// end-to-end router hop count. outerHops supplies the extra hops of the
// current tunnel leg (0 for direct delivery); pass nil when the host never
// receives tunneled traffic.
func AttachProbe(node *netem.Node, s *sim.Scheduler, flow uint16, probe *metrics.FlowProbe, outerHops func() int) {
	node.BindUDP(WorkloadPort, func(rx netem.RxPacket, u *ipv6.UDP) {
		b, ok := ParseBeacon(u.Payload)
		if !ok || b.Flow != flow {
			return
		}
		hops := int(ipv6.DefaultHopLimit - rx.Pkt.Hdr.HopLimit)
		if rx.ViaTunnel && outerHops != nil {
			hops += outerHops()
		}
		probe.Record(b.Seq, s.Now(), hops)
	})
}
