package scenario

import (
	"testing"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/netem"
)

func streamFrom(t *Topo, h *Host, interval time.Duration) *CBR {
	return NewCBR(t.Sched, 1, interval, 64, func(p []byte) {
		src := h.MN.CareOf()
		if src.IsUnspecified() {
			src = h.MN.HomeAddress
		}
		u := &ipv6.UDP{SrcPort: WorkloadPort, DstPort: WorkloadPort, Payload: p}
		pkt := &ipv6.Packet{
			Hdr:     ipv6.Header{Src: src, Dst: Group, HopLimit: ipv6.DefaultHopLimit},
			Proto:   ipv6.ProtoUDP,
			Payload: u.Marshal(src, Group),
		}
		_ = h.Node.OutputOn(h.Iface, pkt)
	})
}

func TestLineTopologyEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	topo := NewLine(6, opt) // 6 routers, 7 links
	if len(topo.Routers) != 6 || len(topo.Links) != 7 {
		t.Fatalf("routers=%d links=%d", len(topo.Routers), len(topo.Links))
	}
	src := topo.AddHost("src", 0)
	dst := topo.AddHost("dst", 6)
	dst.MLD.Join(dst.Iface, Group)

	got := 0
	var hops int
	dst.Node.BindUDP(WorkloadPort, func(rx netem.RxPacket, u *ipv6.UDP) {
		got++
		hops = int(ipv6.DefaultHopLimit - rx.Pkt.Hdr.HopLimit)
	})
	streamFrom(topo, src, 100*time.Millisecond)
	topo.Run(30 * time.Second)
	if got < 250 {
		t.Fatalf("delivered %d across 6-router chain", got)
	}
	if hops != 6 {
		t.Fatalf("hops = %d, want 6 (every router decrements)", hops)
	}
}

func TestLinePruningAtDepth(t *testing.T) {
	opt := DefaultOptions()
	topo := NewLine(4, opt)
	src := topo.AddHost("src", 0)
	mid := topo.AddHost("mid", 2)
	mid.MLD.Join(mid.Iface, Group)
	streamFrom(topo, src, 100*time.Millisecond)

	// Tail links beyond the member must be pruned after the flood.
	tail := 0
	topo.Links[4].AddTap(func(ev netem.TxEvent) {
		if ev.Pkt.Proto == ipv6.ProtoUDP && ev.Pkt.Hdr.Dst == Group {
			tail++
		}
	})
	topo.Run(60 * time.Second)
	if tail > 50 {
		t.Fatalf("tail link carried %d data frames; prune failed at depth", tail)
	}
	got := 0
	mid.Node.BindUDP(WorkloadPort, func(netem.RxPacket, *ipv6.UDP) { got++ })
	topo.Run(10 * time.Second)
	if got < 80 {
		t.Fatalf("mid host got %d", got)
	}
}

func TestLineMobileRegistersAcrossChain(t *testing.T) {
	opt := DefaultOptions()
	topo := NewLine(5, opt)
	m := topo.AddHost("m", 0)
	topo.Run(5 * time.Second)
	topo.Move(m, 5) // five routers away from home
	topo.Run(20 * time.Second)
	if !m.MN.Registered() {
		t.Fatal("registration across the chain failed")
	}
	if _, ok := topo.HAs[topo.Links[0]].BindingFor(m.MN.HomeAddress); !ok {
		t.Fatal("no binding at the home agent")
	}
}

func TestStarTopologyFloodBreadth(t *testing.T) {
	opt := DefaultOptions()
	topo := NewStar(8, opt) // hub + core link + 8 leaves
	src := topo.AddHost("src", 0)
	// One member on leaf 1; leaves 2..8 memberless.
	m := topo.AddHost("m", 1)
	m.MLD.Join(m.Iface, Group)

	leafFrames := make([]int, 9)
	for i := 1; i <= 8; i++ {
		i := i
		topo.Links[i].AddTap(func(ev netem.TxEvent) {
			if ev.Pkt.Proto == ipv6.ProtoUDP && ev.Pkt.Hdr.Dst == Group {
				leafFrames[i]++
			}
		})
	}
	streamFrom(topo, src, 100*time.Millisecond)
	topo.Run(60 * time.Second)

	if leafFrames[1] < 500 {
		t.Fatalf("member leaf got %d frames", leafFrames[1])
	}
	for i := 2; i <= 8; i++ {
		if leafFrames[i] != 0 {
			t.Errorf("memberless leaf %d carried %d frames (hub has no PIM neighbors there; no flood expected)", i, leafFrames[i])
		}
	}
}

func TestStarHomeAgentOnHub(t *testing.T) {
	opt := DefaultOptions()
	topo := NewStar(3, opt)
	m := topo.AddHost("m", 1)
	topo.Run(5 * time.Second)
	topo.Move(m, 2)
	topo.Run(15 * time.Second)
	if !m.MN.Registered() {
		t.Fatal("registration via hub failed")
	}
	b, ok := topo.HAs[topo.Links[1]].BindingFor(m.MN.HomeAddress)
	if !ok {
		t.Fatal("hub has no binding")
	}
	p, _ := topo.Dom.PrefixOf(topo.Links[2])
	if !b.CareOf.MatchesPrefix(p, 64) {
		t.Fatalf("care-of %s not from leaf 2", b.CareOf)
	}
}

// Depth scaling: the tunnel detour grows linearly with the distance
// between home link and foreign link — quantifying the paper's
// "suboptimal routing" criterion as a function of topology depth.
func TestTunnelStretchGrowsWithDepth(t *testing.T) {
	measure := func(depth int) int {
		opt := DefaultOptions()
		topo := NewLine(depth, opt)
		m := topo.AddHost("m", 0) // home at one end
		topo.Run(5 * time.Second)
		topo.Move(m, depth) // foreign link at the other end
		topo.Run(20 * time.Second)

		// The HA tunnels a unicast packet to the MN; outer hop count is
		// the detour length.
		src := topo.AddHost("peer", 0)
		got := make(chan int, 1)
		var outerHops int
		m.MN.OnDecap = func(outer, inner *ipv6.Packet) {
			outerHops = int(ipv6.DefaultHopLimit - outer.Hdr.HopLimit)
		}
		m.Node.BindUDP(7, func(rx netem.RxPacket, u *ipv6.UDP) {
			select {
			case got <- outerHops:
			default:
			}
		})
		u := &ipv6.UDP{SrcPort: 7, DstPort: 7, Payload: []byte("x")}
		pkt := &ipv6.Packet{
			Hdr:     ipv6.Header{Src: src.MN.HomeAddress, Dst: m.MN.HomeAddress, HopLimit: 64},
			Proto:   ipv6.ProtoUDP,
			Payload: u.Marshal(src.MN.HomeAddress, m.MN.HomeAddress),
		}
		_ = src.Node.Output(pkt)
		topo.Run(5 * time.Second)
		select {
		case h := <-got:
			return h
		default:
			t.Fatalf("depth %d: tunneled packet not delivered", depth)
			return 0
		}
	}
	// The encapsulating home agent originates the outer packet (no
	// decrement for itself): outer hops = depth - 1, linear in depth.
	h2, h5 := measure(2), measure(5)
	if h2 != 1 || h5 != 4 {
		t.Fatalf("tunnel outer hops = %d,%d for depths 2,5; want 1,4", h2, h5)
	}
}
