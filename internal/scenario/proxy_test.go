package scenario

import (
	"testing"
	"time"
)

func TestProxyPlanDisabledByDefault(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	if !f.Proxy.Empty() {
		t.Fatalf("ProxyDepth=0 built a plan: %+v", f.Proxy)
	}
	if f.ProxyOf("A") != nil {
		t.Fatal("A runs a proxy engine without a plan")
	}
}

func TestProxyBuildFigure1(t *testing.T) {
	opt := DefaultOptions()
	opt.ProxyDepth = 2
	f := NewFigure1(opt)
	if f.Proxy.Empty() {
		t.Fatal("no proxy plan at depth 2")
	}
	for _, name := range []string{"A", "E"} {
		px := f.ProxyOf(name)
		if px == nil {
			t.Fatalf("%s is not running the proxy engine", name)
		}
		if px.Name() != "mldproxy" {
			t.Fatalf("%s engine = %q", name, px.Name())
		}
	}
	for _, name := range []string{"B", "C", "D"} {
		if f.ProxyOf(name) != nil {
			t.Fatalf("core router %s runs a proxy engine", name)
		}
		if _, ok := f.ProxySpec(name); ok {
			t.Fatalf("core router %s has a proxy spec", name)
		}
	}
	spec, ok := f.ProxySpec("E")
	if !ok || spec.Upstream != "L5" || spec.Anchor != "D" {
		t.Fatalf("E spec = %+v ok=%v", spec, ok)
	}
	// The network must run cleanly with the mixed engine set.
	f.Run(30 * time.Second)
}

func TestProxyHandoverClassification(t *testing.T) {
	opt := DefaultOptions()
	opt.ProxyDepth = 2
	f := NewFigure1(opt)
	f.Run(2 * time.Second)

	assertCounts := func(wantLocal, wantHome uint64) {
		t.Helper()
		local, home := f.HandoverCounts()
		if local != wantLocal || home != wantHome {
			t.Fatalf("handovers local=%d home=%d, want %d/%d", local, home, wantLocal, wantHome)
		}
	}
	assertCounts(0, 0)

	// L4 and L5 both lie inside D's domain: anchor-local.
	f.Move("R3", "L5")
	assertCounts(1, 0)
	f.Run(time.Second)

	// L5 (domain D) to L1 (domain B) crosses anchors: home-routed.
	f.Move("R3", "L1")
	assertCounts(1, 1)
	f.Run(time.Second)

	// L1 (domain B) to the backbone L3 (no domain): home-routed.
	f.Move("R3", "L3")
	assertCounts(1, 2)

	// Without a plan the counters stay untouched.
	f2 := NewFigure1(DefaultOptions())
	f2.Run(2 * time.Second)
	f2.Move("R3", "L5")
	if l, h := f2.HandoverCounts(); l != 0 || h != 0 {
		t.Fatalf("plan-less run counted handovers: %d/%d", l, h)
	}
}
