package scenario

import (
	"strings"
	"testing"
	"time"

	"mip6mcast/internal/topo"
)

// buildSharded builds a multi-region network over a generated graph and
// returns it with a pair of LAN names from two different regions.
func buildSharded(t *testing.T) (f *Network, lanA, lanB string) {
	t.Helper()
	g, err := topo.FromSpec("ba", 40, 7)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	opt := DefaultOptions()
	opt.Seed = 7
	opt.Shards = 4
	opt.ShardWorkers = 1
	opt.CoreLinkDelay = 5 * time.Millisecond
	f = Build(g, opt)
	if f.Part == nil || f.Part.N < 2 {
		t.Skip("graph collapsed to a single region")
	}
	lr := f.Part.LinkRegion(g)
	regionA := -1
	for li, l := range g.Links {
		if !l.LAN || lr[li] < 0 {
			continue
		}
		if lanA == "" {
			lanA, regionA = l.Name, lr[li]
		} else if lr[li] != regionA {
			return f, lanA, l.Name
		}
	}
	t.Skip("no two LANs in different regions")
	return
}

// Regression: a cross-region handover used to reach netem.Network.Move
// and panic the whole process mid-run. Scenario-level validation must
// surface it as a descriptive error and leave the run intact.
func TestCrossRegionMoveSurfacesError(t *testing.T) {
	f, lanA, lanB := buildSharded(t)
	f.AddHost("mn0", lanA, 0xaa01)
	f.Run(12 * time.Second)

	err := f.TryMove("mn0", lanB)
	if err == nil {
		t.Fatalf("TryMove %s -> %s across regions succeeded, want error", lanA, lanB)
	}
	if !strings.Contains(err.Error(), "different shard regions") ||
		!strings.Contains(err.Error(), "MobilityGroups") {
		t.Fatalf("cross-region error not descriptive: %v", err)
	}

	// The run survives: the host is still attached and time advances.
	if f.Hosts["mn0"].Iface.Link == nil || f.Hosts["mn0"].Iface.Link.Name != lanA {
		t.Fatalf("failed move mutated attachment: %v", f.Hosts["mn0"].Iface.Link)
	}
	before := f.Now()
	f.Run(5 * time.Second)
	if f.Now() <= before {
		t.Fatal("run did not continue after rejected move")
	}
}

func TestTryMoveUnknownNames(t *testing.T) {
	opt := DefaultOptions()
	f := NewFigure1(opt)
	f.Settle()
	if err := f.TryMove("ghost", "L6"); err == nil || !strings.Contains(err.Error(), "no host") {
		t.Fatalf("unknown host: %v", err)
	}
	if err := f.TryMove("R3", "L99"); err == nil || !strings.Contains(err.Error(), "no link") {
		t.Fatalf("unknown link: %v", err)
	}
}

// Build must reject malformed mobility groups with a descriptive error
// at construction time, at any shard count.
func TestBuildRejectsBadMobilityGroups(t *testing.T) {
	g := topo.Figure1()
	for name, groups := range map[string][][]int{
		"out-of-range": {{0, 99}},
		"empty-group":  {{}},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: Build accepted malformed mobility groups", name)
				}
				msg, _ := r.(string)
				if !strings.Contains(msg, "mobility group") {
					t.Fatalf("%s: panic not descriptive: %v", name, r)
				}
			}()
			opt := DefaultOptions()
			opt.MobilityGroups = groups
			Build(g, opt)
		}()
	}
}
