package scenario

import (
	"bytes"
	"testing"
	"time"

	"mip6mcast/internal/obs"
	"mip6mcast/internal/telemetry"
)

// telemetryRun builds a Figure 1 network with the standard sampler set,
// drives membership + traffic + a crash/restart, and returns the CSV
// export.
func telemetryRun(t *testing.T) (*telemetry.Registry, string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opt := DefaultOptions()
	opt.Telemetry = reg
	opt.TelemetryEvery = time.Second
	f := NewFigure1(opt)
	h := f.Hosts["R1"]
	h.MLD.Join(h.Iface, Group)
	f.Settle()
	f.SendLocalMulticast("S", Group, []byte("payload"))
	f.Run(5 * time.Second)
	f.CrashRouter("E")
	f.Run(5 * time.Second)
	f.RestartRouter("E")
	f.Run(5 * time.Second)
	var buf bytes.Buffer
	if err := reg.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return reg, buf.String()
}

func TestStandardSamplerSet(t *testing.T) {
	reg, _ := telemetryRun(t)

	cols := map[string]int{}
	for i, c := range reg.Columns() {
		cols[c] = i
	}
	// One series per subsystem layer must exist; the per-link and
	// per-router families follow construction order.
	for _, want := range []string{
		"sim/queue_depth", "sim/queue_high_water", "sim/dispatched_total",
		"sim/events_per_tick", "sim/queue_depth_dist_le_4", "sim/queue_depth_dist_count",
		"link L1/ctrl_bytes", "link L6/data_bytes", "link L3/drops",
		"router A/sg_entries", "router E/sg_entries",
		"engine/sg_total", "engine/sg_high_water", "engine/grafts_total",
		"engine/prunes_total", "engine/ctrl_msgs_total",
		"mipv6/bindings", "mipv6/tunneled_total",
	} {
		if _, ok := cols[want]; !ok {
			t.Errorf("missing column %q", want)
		}
	}

	rows := reg.Rows()
	if len(rows) != 25 {
		t.Fatalf("rows = %d, want 25 (one per virtual second)", len(rows))
	}
	last := rows[len(rows)-1]
	if v := last.V[cols["sim/dispatched_total"]]; v <= 0 {
		t.Error("dispatched_total never rose")
	}
	if v := last.V[cols["link L1/ctrl_bytes"]]; v <= 0 {
		t.Error("L1 control bytes never rose (MLD/PIM traffic should be accounted)")
	}
	if v := last.V[cols["mipv6/bindings"]]; v != 0 {
		t.Errorf("bindings = %g with every host at home, want 0", v)
	}
	// sg_high_water must be the running max of sg_total.
	var hw float64
	for _, row := range rows {
		sg := row.V[cols["engine/sg_total"]]
		if sg > hw {
			hw = sg
		}
		if got := row.V[cols["engine/sg_high_water"]]; got != hw {
			t.Fatalf("at %v sg_high_water = %g, want running max %g", row.At, got, hw)
		}
	}
	if hw <= 0 {
		t.Error("no (S,G) state ever sampled despite multicast traffic")
	}
	// Monotone counters stay monotone across the crash/restart window:
	// the samplers must follow the replaced engine/HA instances, not
	// captured pointers.
	prev := -1.0
	for _, row := range rows {
		v := row.V[cols["sim/dispatched_total"]]
		if v < prev {
			t.Fatalf("dispatched_total regressed: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	_, a := telemetryRun(t)
	_, b := telemetryRun(t)
	if a != b {
		t.Error("telemetry CSV differs between identical runs")
	}
}

// With both a recorder and a registry attached, scalar samples mirror into
// the obs stream as counter events on the "telemetry" node — the bridge
// that puts counter tracks in the Perfetto export.
func TestTelemetryMirrorsIntoRecorder(t *testing.T) {
	rec := obs.NewRecorder(nil)
	reg := telemetry.NewRegistry()
	opt := DefaultOptions()
	opt.Obs = rec
	opt.Telemetry = reg
	f := NewFigure1(opt)
	f.Run(3 * time.Second)

	counters := 0
	for _, e := range rec.Events() {
		if e.Cat == obs.CatCounter && e.Node == "telemetry" {
			counters++
		}
	}
	// The only histogram is sim/queue_depth_dist: 6 bounds + count + sum =
	// 8 columns that must not mirror; every other column is scalar.
	scalars := len(reg.Columns()) - 8
	want := 3 * scalars
	if counters != want {
		t.Errorf("mirrored %d counter events, want %d (3 ticks x %d scalar columns)", counters, want, scalars)
	}
}

// A shared options value that builds two networks must attach the registry
// only to the first (one registry = one timeline).
func TestTelemetrySingleTimelineGuard(t *testing.T) {
	reg := telemetry.NewRegistry()
	opt := DefaultOptions()
	opt.Telemetry = reg
	f1 := NewFigure1(opt)
	_ = NewFigure1(opt) // must not panic on double Start
	f1.Run(2 * time.Second)
	if len(reg.Rows()) != 2 {
		t.Errorf("rows = %d, want 2 (second network must not double-sample)", len(reg.Rows()))
	}
}
