package scenario

import (
	"time"

	"mip6mcast/internal/metrics"
)

// attachTelemetry registers the standard sampler set on opt.Telemetry and
// starts sampling on f's scheduler. Metric registration order — and with
// it the exported column order — is a pure function of the topology
// (construction order of links and routers), so the series layout is
// deterministic for a fixed graph.
//
// The samplers are read-only probes over live structures; none of them
// capture engine or home-agent pointers, because CrashRouter/RestartRouter
// replace those mid-run — everything is re-read through f.Routers each
// tick.
func attachTelemetry(f *Network) {
	reg := f.Opt.Telemetry
	every := f.Opt.TelemetryEvery
	if every <= 0 {
		every = time.Second
	}

	// Scheduler health: queue depth (sampled + bucketed for a depth
	// distribution), cumulative dispatch count, and the per-tick dispatch
	// delta (events per sampling period). Sharded runs sample at kernel
	// barriers (all region clocks equal — a consistent cut) and aggregate
	// across region schedulers: sums for depth/dispatch, max for the
	// high-water mark. With one scheduler this reduces to the classic
	// single-timeline series.
	scheds := f.Scheds()
	qhist := reg.Histogram("sim/queue_depth_dist", []float64{4, 16, 64, 256, 1024, 4096})
	reg.Gauge("sim/queue_depth", func() float64 {
		var d float64
		for _, s := range scheds {
			d += float64(s.Pending())
		}
		qhist.Observe(d)
		return d
	})
	reg.Gauge("sim/queue_high_water", func() float64 {
		var hw float64
		for _, s := range scheds {
			if v := float64(s.QueueHighWater()); v > hw {
				hw = v
			}
		}
		return hw
	})
	dispatched := func() uint64 {
		var n uint64
		for _, s := range scheds {
			n += s.Processed()
		}
		return n
	}
	reg.Gauge("sim/dispatched_total", func() float64 { return float64(dispatched()) })
	var lastDispatched uint64
	reg.Gauge("sim/events_per_tick", func() float64 {
		n := dispatched()
		d := n - lastDispatched
		lastDispatched = n
		return float64(d)
	})

	// Per-link wire accounting: control vs data bytes from the accountant's
	// class split, impairment drops from the link's own delivery counters.
	for _, ln := range f.linkOrder {
		ln := ln
		l := f.Links[ln]
		lc := f.Acct.Of(l)
		// A split cross-region link counts each direction on its own half;
		// the series reports the whole link, so fold the peer half in.
		var pc *metrics.LinkCounters
		peer := l.Peer()
		if peer != nil {
			pc = f.Acct.Of(peer)
		}
		reg.Gauge("link "+ln+"/ctrl_bytes", func() float64 {
			n := lc.Bytes[metrics.ClassPIM] + lc.Bytes[metrics.ClassMLD] +
				lc.Bytes[metrics.ClassNDP] + lc.Bytes[metrics.ClassMIPv6]
			if pc != nil {
				n += pc.Bytes[metrics.ClassPIM] + pc.Bytes[metrics.ClassMLD] +
					pc.Bytes[metrics.ClassNDP] + pc.Bytes[metrics.ClassMIPv6]
			}
			return float64(n)
		})
		reg.Gauge("link "+ln+"/data_bytes", func() float64 {
			n := lc.Bytes[metrics.ClassData] + lc.Bytes[metrics.ClassTunnel]
			if pc != nil {
				n += pc.Bytes[metrics.ClassData] + pc.Bytes[metrics.ClassTunnel]
			}
			return float64(n)
		})
		reg.Gauge("link "+ln+"/drops", func() float64 {
			n := l.LostDeliveries + l.CorruptedDeliveries + l.DownDrops
			if peer != nil {
				n += peer.LostDeliveries + peer.CorruptedDeliveries + peer.DownDrops
			}
			return float64(n)
		})
	}

	// Per-router (S,G) table size, plus engine-wide aggregates sampled once
	// per tick from one MulticastStats walk. The (S,G) high-water gauge
	// tracks the largest total ever sampled (the paper's per-router state
	// concern, Helmy's aggregation metric).
	for _, rn := range f.routerOrder {
		rn := rn
		reg.Gauge("router "+rn+"/sg_entries", func() float64 {
			return float64(f.Routers[rn].Engine.EntryCount())
		})
	}
	gSG := reg.Gauge("engine/sg_total", nil)
	gSGHW := reg.Gauge("engine/sg_high_water", nil)
	gGraft := reg.Gauge("engine/grafts_total", nil)
	gPrune := reg.Gauge("engine/prunes_total", nil)
	gCtrl := reg.Gauge("engine/ctrl_msgs_total", nil)
	gBind := reg.Gauge("mipv6/bindings", nil)
	gTun := reg.Gauge("mipv6/tunneled_total", nil)
	var sgHW float64
	reg.OnSample(func() {
		var sg float64
		for _, rn := range f.routerOrder {
			sg += float64(f.Routers[rn].Engine.EntryCount())
		}
		if sg > sgHW {
			sgHW = sg
		}
		gSG.Set(sg)
		gSGHW.Set(sgHW)
		st := f.MulticastStats()
		gGraft.Set(float64(st.GraftsSent))
		gPrune.Set(float64(st.PrunesSent))
		gCtrl.Set(float64(st.ControlMessages()))

		var bind, tun float64
		for _, rn := range f.routerOrder {
			for _, ha := range f.Routers[rn].HomeAgents() {
				bind += float64(ha.BindingCount())
				tun += float64(ha.PacketsTunneled + ha.MulticastTunneled)
			}
		}
		gBind.Set(bind)
		gTun.Set(tun)
	})

	// Proxy-hierarchy series, only when a plan is active (keeps the series
	// layout — and golden traces — of proxy-disabled builds unchanged).
	if !f.Proxy.Empty() {
		reg.Gauge("proxy/tree_depth", func() float64 {
			return float64(f.Proxy.MaxDepth)
		})
		gPAgg := reg.Gauge("proxy/aggregated_entries", nil)
		gPAggHW := reg.Gauge("proxy/aggregated_high_water", nil)
		gPLocal := reg.Gauge("proxy/anchor_local_handovers", nil)
		gPHome := reg.Gauge("proxy/home_routed_handovers", nil)
		reg.OnSample(func() {
			var agg, aggHW float64
			for _, rn := range f.routerOrder {
				if px := f.ProxyOf(rn); px != nil {
					agg += float64(px.EntryCount())
					aggHW += float64(px.AggregatedHighWater())
				}
			}
			gPAgg.Set(agg)
			gPAggHW.Set(aggHW)
			local, home := f.HandoverCounts()
			gPLocal.Set(float64(local))
			gPHome.Set(float64(home))
		})
	}

	if f.obs != nil {
		reg.Mirror(f.obs, "telemetry")
	}
	if f.Kern != nil {
		// Barrier-driven sampling: the kernel forces a barrier at every
		// period, where all region clocks agree — each Row is a consistent
		// cross-region cut. The root scheduler stamps row times.
		reg.StartManual(f.Sched, every)
		f.Kern.Every(every, reg.Sample)
		return
	}
	reg.Start(f.Sched, every)
}
