package scenario

// Timer hygiene across node crash/restart: once a router is crashed, no
// ticker or timer owned by its dead protocol engines may ever fire again —
// observable as the crashed node transmitting nothing, over a horizon far
// past every protocol period (hellos, MLD queries, NDP advertisements,
// state refresh, binding refresh). After restart, the rebuilt engines must
// come back to life and re-learn the protocol state.

import (
	"testing"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/netem"
)

func TestCrashedRouterNeverTransmits(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Settle()
	h := f.Hosts["R3"]
	h.MLD.Join(h.Iface, Group)
	f.Run(30 * time.Second)

	d := f.Routers["D"]
	dAddrs := map[ipv6.Addr]bool{}
	for _, ifc := range d.Node.Ifaces {
		dAddrs[ifc.LinkLocal()] = true // hellos/queries use link-local src
		for _, a := range ifc.Addrs() {
			dAddrs[a] = true
		}
	}
	fromD := 0
	for _, ln := range []string{"L3", "L4", "L5"} {
		f.Links[ln].AddTap(func(ev netem.TxEvent) {
			if ev.Pkt != nil && dAddrs[ev.Pkt.Hdr.Src] {
				fromD++
			}
		})
	}
	// Sanity: with D alive the taps must see its periodic traffic.
	f.Run(2 * time.Minute)
	if fromD == 0 {
		t.Fatal("setup: taps saw no frames from a live D")
	}

	f.CrashRouter("D")
	fromD = 0
	// Hours of virtual time: every periodic engine timer (hello 30 s, MLD
	// query 125 s, RA, state refresh, listener expiries) would fire many
	// times over if any survived the crash.
	f.Run(4 * time.Hour)
	if fromD != 0 {
		t.Fatalf("dead router transmitted %d frames; some engine timer survived Crash", fromD)
	}
	hellosAtCrash := d.Engine.MulticastStats().HellosSent
	f.Run(10 * time.Minute)
	if d.Engine.MulticastStats().HellosSent != hellosAtCrash {
		t.Fatal("closed PIM engine kept sending hellos")
	}

	// Revival: fresh engines take over, the node speaks again and relearns
	// its listeners.
	f.RestartRouter("D")
	d = f.Routers["D"] // RestartRouter rebuilds the protocol engines
	f.Run(5 * time.Minute)
	if fromD == 0 {
		t.Fatal("restarted router stayed silent")
	}
	var l4 *netem.Interface
	for _, ifc := range d.Node.Ifaces {
		if ifc.Link == f.Links["L4"] {
			l4 = ifc
		}
	}
	if l4 == nil {
		t.Fatal("D lost its L4 attachment across restart")
	}
	if !d.MLD.HasListeners(l4, Group) {
		t.Fatal("restarted MLD querier did not relearn R3's membership")
	}
	if !d.Engine.HasLocalMember(Group) && d.Engine.EntryCount() == 0 {
		// No data flows in this test; just require the MLD->PIM wiring to
		// have reported the listener to the fresh engine.
		t.Log("note: no (S,G) entries without a sender; listener wiring checked via MLD")
	}
}

// TestCrashClearsVolatileKeepsStatic pins the crash model: addresses and
// link attachment survive; handlers, joined groups and proxies do not.
func TestCrashClearsVolatileKeepsStatic(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Settle()
	h := f.Hosts["R3"]
	h.MLD.Join(h.Iface, Group)
	f.Run(time.Second)

	d := f.Routers["D"]
	nAddrs := 0
	for _, ifc := range d.Node.Ifaces {
		nAddrs += len(ifc.Addrs())
	}
	if nAddrs == 0 {
		t.Fatal("setup: D has no addresses")
	}
	f.CrashRouter("D")
	for _, ifc := range d.Node.Ifaces {
		if ifc.Up() {
			t.Fatal("interface still up after crash")
		}
		if got := len(ifc.Addrs()); got == 0 {
			t.Fatal("crash wiped static addresses")
		}
	}

	// Group membership is volatile state. A host interface has no
	// all-multicast mode, so its receive filter directly exposes the joined
	// set — which a crash must wipe.
	if !h.Iface.AcceptsGroup(Group) {
		t.Fatal("setup: R3's interface does not accept the joined group")
	}
	h.Node.Crash()
	if h.Iface.AcceptsGroup(Group) {
		t.Fatal("crash left the joined group in the receive filter")
	}
	if got := len(h.Iface.Addrs()); got == 0 {
		t.Fatal("host crash wiped static addresses")
	}

	f.RestartRouter("D")
	for _, ifc := range f.Routers["D"].Node.Ifaces {
		if !ifc.Up() {
			t.Fatal("interface down after restart")
		}
	}
}
