package scenario

import (
	"fmt"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/mld"
	"mip6mcast/internal/ndp"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/routing"
	"mip6mcast/internal/sim"
)

// Generated topologies for scaling studies beyond the paper's fixed
// Figure 1 network: chains of routers (depth scaling: how distance from
// the home link amplifies tunnel stretch and graft latency) and stars
// (breadth scaling: how many leaf links a re-flood wastes bandwidth on).

// Topo is a generated network with the full protocol stack, structured
// like the Figure 1 Network but with programmatic shape.
type Topo struct {
	Opt     Options
	Sched   *sim.Scheduler
	Net     *netem.Network
	Dom     *routing.Domain
	Links   []*netem.Link // Links[i] has prefix 2001:db8:i+1::/64
	Routers []*Router     // Routers[i]'s protocol bundle
	HAs     map[*netem.Link]*mipv6.HomeAgent
	Acct    *metrics.Accountant

	hostSeq uint64
}

// NewLine builds a chain: Link0 [R0] Link1 [R1] ... [Rn-1] Linkn — n
// routers, n+1 links. Every router runs PIM-DM, MLD and NDP; every link's
// designated home agent is the lower-indexed attached router (the higher
// for Link0's sole router).
func NewLine(n int, opt Options) *Topo {
	if n < 1 {
		panic("scenario: NewLine needs at least one router")
	}
	t := newTopo(opt)
	for i := 0; i <= n; i++ {
		t.addLink(i)
	}
	for i := 0; i < n; i++ {
		t.addRouter(fmt.Sprintf("R%d", i), t.Links[i], t.Links[i+1])
	}
	t.finish(func(l *netem.Link) *Router {
		for i, link := range t.Links {
			if link != l {
				continue
			}
			if i == 0 {
				return t.Routers[0]
			}
			return t.Routers[i-1]
		}
		return nil
	})
	return t
}

// NewStar builds a hub router connected to n leaf links plus one core link:
// Core [Hub] Leaf1..Leafn. The hub is home agent for every link.
func NewStar(n int, opt Options) *Topo {
	t := newTopo(opt)
	for i := 0; i <= n; i++ {
		t.addLink(i)
	}
	t.addRouter("HUB", t.Links...)
	t.finish(func(*netem.Link) *Router { return t.Routers[0] })
	return t
}

func newTopo(opt Options) *Topo {
	t := &Topo{
		Opt:   opt,
		Sched: sim.NewScheduler(opt.Seed),
		HAs:   map[*netem.Link]*mipv6.HomeAgent{},
	}
	t.Net = netem.New(t.Sched)
	t.Dom = routing.NewDomain(t.Net)
	return t
}

func (t *Topo) addLink(i int) {
	l := t.Net.NewLink(fmt.Sprintf("K%d", i), t.Opt.LinkBandwidth, t.Opt.LinkDelay)
	l.MTU = t.Opt.LinkMTU
	t.Dom.AssignPrefix(l, ipv6.MustParseAddr(fmt.Sprintf("2001:db8:%d::", i+1)))
	t.Links = append(t.Links, l)
}

func (t *Topo) addRouter(name string, links ...*netem.Link) *Router {
	node := t.Net.NewNode(name, true)
	for _, l := range links {
		ifc := node.AddInterface(l)
		p, _ := t.Dom.PrefixOf(l)
		ifc.AddAddr(p.WithInterfaceID(0xa0 + uint64(len(t.Routers)+1)))
	}
	r := &Router{Node: node, HAs: map[string]*mipv6.HomeAgent{}}
	t.Routers = append(t.Routers, r)
	return r
}

// finish computes routes, starts the protocol engines, and installs home
// agents per the designation function.
func (t *Topo) finish(haFor func(*netem.Link) *Router) {
	t.Dom.Recompute()
	for _, r := range t.Routers {
		r.Engine = buildEngine(r.Node, t.Opt, t.Dom.TableOf(r.Node))
		r.MLD = mld.NewRouter(r.Node, t.Opt.MLD)
		eng := r.Engine
		r.MLD.OnListenerChange = func(ev mld.ListenerEvent) {
			eng.HandleListenerChange(ev.Iface, ev.Group, ev.Present)
		}
		r.NDP = ndp.NewRouter(r.Node, t.Opt.NDP, func(ifc *netem.Interface) (ipv6.Addr, bool) {
			return t.Dom.PrefixOf(ifc.Link)
		})
	}
	for _, l := range t.Links {
		r := haFor(l)
		if r == nil {
			continue
		}
		for _, ifc := range r.Node.Ifaces {
			if ifc.Link == l {
				ha := mipv6.NewHomeAgent(r.Node, ifc, ifc.GlobalAddr(), t.Opt.HA)
				t.HAs[l] = ha
				r.HAs[l.Name] = ha
			}
		}
	}
	t.Acct = metrics.NewAccountant(t.Net)
}

// AddHost creates a mobile-capable host homed on Links[homeIdx].
func (t *Topo) AddHost(name string, homeIdx int) *Host {
	t.hostSeq++
	link := t.Links[homeIdx]
	node := t.Net.NewNode(name, false)
	ifc := node.AddInterface(link)
	p, _ := t.Dom.PrefixOf(link)
	cfg := mipv6.DefaultMNConfig(p, t.HAs[link].Address)
	cfg.BindingLifetime = t.Opt.BindingLifetime
	h := &Host{Name: name, Node: node, Iface: ifc, IID: 0x9000 + t.hostSeq}
	h.MN = mipv6.NewMobileNode(node, h.IID, cfg)
	h.MN.OnDecap = func(outer, inner *ipv6.Packet) {
		h.lastOuterHops = int(ipv6.DefaultHopLimit - outer.Hdr.HopLimit)
	}
	h.MLD = mld.NewHost(node, t.Opt.HostMLD)
	t.Dom.AttachHost(node)
	return h
}

// Run advances virtual time by d.
func (t *Topo) Run(d time.Duration) { t.Sched.RunFor(d) }

// Move reattaches a host interface to Links[idx].
func (t *Topo) Move(h *Host, idx int) { t.Net.Move(h.Iface, t.Links[idx]) }
