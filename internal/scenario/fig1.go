package scenario

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mip6mcast/internal/engine"
	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/mld"
	"mip6mcast/internal/mldproxy"
	"mip6mcast/internal/ndp"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/obs"
	"mip6mcast/internal/pimdm"
	"mip6mcast/internal/routing"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/telemetry"
	"mip6mcast/internal/topo"
)

// Group is the multicast group used throughout the experiments.
var Group = ipv6.MustParseAddr("ff0e::101")

// Options parameterizes a network build. The zero value is not useful; use
// DefaultOptions.
type Options struct {
	Seed int64
	// Engine selects the dense-mode multicast engine by registry name
	// ("pimdm", "hpimdm"); empty selects pimdm. See RegisterEngine.
	Engine string
	// PIM is the shared dense-mode timer set. Every engine derives its
	// configuration from it (hpimdm via hpimdm.FromPIM) so one Options
	// value parameterizes a cross-engine comparison consistently.
	PIM     pimdm.Config
	MLD     mld.Config
	HostMLD mld.HostConfig
	NDP     ndp.RouterConfig
	HA      mipv6.HAConfig
	// BindingLifetime requested by mobile nodes.
	BindingLifetime time.Duration
	// LinkBandwidth in bits/s (0: unconstrained) and one-way LinkDelay.
	LinkBandwidth int64
	LinkDelay     time.Duration
	// LinkMTU bounds frame size (0: unlimited). Encapsulation adds 40
	// bytes, so tunnels near the MTU trigger source fragmentation at the
	// tunnel entry — the implementation issue the paper's conclusion
	// flags for the uni-directional tunnels.
	LinkMTU int

	// Shards, when > 1, partitions the router graph into up to that many
	// regions (topo.PartitionGraph — LANs are never split) and drives them
	// in parallel under a conservative sim.Kernel: one deterministic
	// timeline, byte-identical for any worker count at a fixed shard
	// count. 0 or 1 selects the classic single-scheduler sequential path,
	// byte-identical to previous releases. Note that different shard
	// counts are different (individually deterministic) timelines: each
	// region draws from its own seeded streams.
	Shards int
	// ShardWorkers bounds the goroutines driving regions inside a window
	// (0: one per region). It never affects the timeline, only wall-clock.
	ShardWorkers int
	// CoreLinkDelay, when > 0, replaces LinkDelay on every non-LAN (core)
	// link — at ALL shard counts, so sequential and sharded cells of one
	// experiment model the same network. Sharded runs need a positive core
	// delay: the smallest cross-region latency is the kernel's
	// conservative lookahead (CoreLinkDelay if set, else LinkDelay).
	CoreLinkDelay time.Duration
	// MobilityGroups lists sets of link indices that must share a region:
	// a mobile node's home LAN plus every LAN it may move to (netem.Move
	// panics across regions). Scale experiments pass the partition's
	// LinkRegion to topo.GenWorkload so churn stays region-confined.
	MobilityGroups [][]int
	// ProxyDepth, when > 0, enables the hierarchical MLD-proxy subsystem
	// (approach #5): proxy domains come from the graph's explicit
	// ProxyDomains designation, or are derived by topo.AutoProxyDomains
	// with this peel depth when the graph designates none. Member routers
	// then run internal/mldproxy instead of a PIM engine, with their MLD
	// router role disabled on the upstream link. 0 disables the subsystem
	// entirely — builds and traces are unchanged from previous releases.
	ProxyDepth int

	// Obs, when non-nil, is bound to the network's scheduler and attached
	// to every protocol engine and link: state-machine transitions and
	// decoded wire transmissions land in the recorder for JSONL/Perfetto
	// export. One recorder serves one timeline; replicated sweeps attach
	// one per replicate.
	Obs *obs.Recorder
	// Instrument enables the scheduler's per-handler-tag wall-clock
	// timing (see sim.Scheduler.Instrument). Queue high-water mark and
	// dispatch counts are tracked regardless.
	Instrument bool
	// ProfileLabels enables runtime/pprof goroutine labels during event
	// dispatch (see sim.Scheduler.LabelProfiles), so CPU profiles taken
	// through mip6sim's -http pprof endpoint attribute samples to the
	// scheduler handler tags (pim, mld, mipv6, link, ...).
	ProfileLabels bool
	// Telemetry, when non-nil, is populated with the standard sampler set
	// (scheduler, per-link, per-router engine, home-agent series — see
	// attachTelemetry) and started on the network's scheduler. One
	// registry serves one timeline; when one options value builds several
	// networks, only the first network built gets the registry. If Obs is
	// also set, scalar samples are mirrored into it as counter tracks.
	Telemetry *telemetry.Registry
	// TelemetryEvery is the virtual-time sampling period (default 1s).
	TelemetryEvery time.Duration
	// OnNetwork, when non-nil, observes every Network built from these
	// options right after construction. The experiment engine uses it to
	// collect per-replicate scheduler run stats.
	OnNetwork func(*Network)
}

// WithMLD returns a copy of o with the router MLD configuration and the
// host listener configuration replaced in lockstep. Routers and hosts
// read their timers from different fields (MLD vs HostMLD.Config);
// setting only one desynchronizes Query Interval from listener behavior,
// so every caller that retunes MLD must go through this builder.
func (o Options) WithMLD(cfg mld.Config) Options {
	o.MLD = cfg
	o.HostMLD.Config = cfg
	return o
}

// DefaultOptions uses every protocol's draft/RFC default — the
// configuration whose delays the paper criticizes.
func DefaultOptions() Options {
	return Options{
		Seed:            1,
		PIM:             pimdm.DefaultConfig(),
		MLD:             mld.DefaultConfig(),
		HostMLD:         mld.DefaultHostConfig(),
		NDP:             ndp.DefaultRouterConfig(),
		HA:              mipv6.DefaultHAConfig(),
		BindingLifetime: 256 * time.Second,
		LinkBandwidth:   10_000_000, // 10 Mbit/s shared links
		LinkDelay:       time.Millisecond,
		LinkMTU:         1500,
	}
}

// Router bundles one router's protocol roles. Engine is the dense-mode
// multicast engine built by the registry selection in Options.Engine.
type Router struct {
	Node   *netem.Node
	Engine engine.MulticastEngine
	MLD    *mld.Router
	NDP    *ndp.Router
	// HAs maps home-link name to the home agent instance this router runs
	// for it (per the paper: A serves L1, B L2, C L3, D L4+L5, E L6).
	HAs map[string]*mipv6.HomeAgent
}

// HALinks returns the home-link names this router serves, sorted.
func (r *Router) HALinks() []string {
	links := make([]string, 0, len(r.HAs))
	for ln := range r.HAs {
		links = append(links, ln)
	}
	sort.Strings(links)
	return links
}

// HomeAgents returns the router's home agents in sorted home-link order.
// Use this instead of ranging over the HAs map wherever the iteration
// schedules events (core.NewHAService arms a ticker): map order would
// perturb the timeline's event sequence and break trace reproducibility.
func (r *Router) HomeAgents() []*mipv6.HomeAgent {
	links := r.HALinks()
	out := make([]*mipv6.HomeAgent, len(links))
	for i, ln := range links {
		out[i] = r.HAs[ln]
	}
	return out
}

// Host bundles one (potentially mobile) host's roles.
type Host struct {
	Name  string
	Node  *netem.Node
	Iface *netem.Interface
	MN    *mipv6.MobileNode
	MLD   *mld.Host
	IID   uint64
	// HomeLink names the link the host homes on (where its home agent
	// and home prefix live), regardless of current attachment.
	HomeLink string

	lastOuterHops int
}

// OuterHops returns the router hop count of the most recent tunnel leg
// delivering to this host (for path-stretch accounting).
func (h *Host) OuterHops() int { return h.lastOuterHops }

// Network is an assembled simulation system — the paper's Figure 1 or
// any generated topo.Graph (see Build).
type Network struct {
	Opt     Options
	Sched   *sim.Scheduler
	Net     *netem.Network
	Dom     *routing.Domain
	Links   map[string]*netem.Link
	Routers map[string]*Router
	Hosts   map[string]*Host
	Acct    *metrics.Accountant
	// Topo is the graph this network was built from.
	Topo *topo.Graph
	// Kern drives the sharded run; nil on the sequential path (including
	// Shards > 1 over a graph that collapses to one region, e.g. Figure 1,
	// whose links are all LANs). Part is the region assignment it runs.
	Kern *sim.Kernel
	Part *topo.Partition
	// Proxy is the resolved MLD-proxy plan (nil or empty when
	// Options.ProxyDepth is 0 or the graph yields no domains).
	Proxy *topo.ProxyPlan

	// Handover classification counters (atomic: region events move hosts
	// in parallel). Meaningful only when Proxy is non-empty.
	anchorLocalHandovers uint64
	homeRoutedHandovers  uint64

	regionScheds []*sim.Scheduler  // region index -> scheduler; nil sequential
	linkOrder    []string          // link names in construction order
	routerOrder  []string          // router names in construction order
	haFor        map[string]string // link name -> home-agent router name

	obs *obs.Recorder // set by AttachRecorder; nil when not observing
}

// Scheds returns every region scheduler in region order — just the one
// scheduler on the sequential path. Aggregating probes (telemetry, run
// stats) must sum over all of them.
func (f *Network) Scheds() []*sim.Scheduler {
	if f.regionScheds != nil {
		return f.regionScheds
	}
	return []*sim.Scheduler{f.Sched}
}

// At schedules a scripted driver action (a move, a crash, an impairment
// toggle) at absolute virtual time t. Sequentially it is Sched.At; sharded
// it forces a kernel barrier there, so fn runs single-threaded with every
// region clock equal to t — the only safe point to mutate cross-region
// state. Driver scripts must use this instead of f.Sched.At.
func (f *Network) At(t sim.Time, fn func()) {
	if f.Kern != nil {
		f.Kern.At(t, fn)
		return
	}
	f.Sched.At(t, fn)
}

// After schedules a driver action after a delay of virtual time (see At).
func (f *Network) After(d time.Duration, fn func()) {
	if f.Kern != nil {
		f.Kern.Schedule(d, fn)
		return
	}
	f.Sched.Schedule(d, fn)
}

// SamplePeriodic runs fn at every multiple of period. Sharded, the kernel
// fires it at barriers where all region clocks equal the due time, so fn
// may read the whole network as a consistent cut.
func (f *Network) SamplePeriodic(period time.Duration, fn func()) {
	if f.Kern != nil {
		f.Kern.Every(period, fn)
		return
	}
	sim.NewTicker(f.Sched, period, 0, fn)
}

// LinkOrder returns the link names in construction (graph) order. All
// iteration that schedules events or emits trace records must use this
// rather than ranging over the Links map.
func (f *Network) LinkOrder() []string { return f.linkOrder }

// RouterOrder returns the router names in construction (graph) order.
func (f *Network) RouterOrder() []string { return f.routerOrder }

// HomeAgentRouter names the router serving as home agent for a link
// (empty if the link has none).
func (f *Network) HomeAgentRouter(link string) string { return f.haFor[link] }

// figure1 host placement per the paper: Sender S and Receiver 1 on
// Link 1, Receiver 2 on Link 2, Receiver 3 on Link 4.
var (
	hostHomes = map[string]string{
		"S": "L1", "R1": "L1", "R2": "L2", "R3": "L4",
	}
	hostIIDs = map[string]uint64{
		"S": 0x5000, "R1": 0x1001, "R2": 0x1002, "R3": 0x1003,
	}
)

// LinkNames lists the six links in order.
func LinkNames() []string { return []string{"L1", "L2", "L3", "L4", "L5", "L6"} }

// RouterNames lists the five routers in order.
func RouterNames() []string { return []string{"A", "B", "C", "D", "E"} }

// HostNames lists the paper's hosts.
func HostNames() []string { return []string{"S", "R1", "R2", "R3"} }

// Prefix returns the /64 assigned to the numbered link (1-based).
func Prefix(link int) ipv6.Addr {
	return ipv6.MustParseAddr(fmt.Sprintf("2001:db8:%d::", link))
}

// NewFigure1 builds the paper's network with the full protocol stack. All
// hosts start on their home links; no multicast membership or workload is
// attached yet. It is exactly Build(topo.Figure1(), opt) plus the paper's
// four hosts.
func NewFigure1(opt Options) *Network {
	return Build(topo.Figure1(), opt, func(f *Network) {
		for _, name := range HostNames() {
			f.AddHost(name, hostHomes[name], hostIIDs[name])
		}
	})
}

// startRouterProtocols builds the router's full protocol stack (PIM-DM,
// MLD querier, NDP advertising, home-agent roles) on its node — used both
// at construction and to revive a crashed router with factory-fresh state.
func (f *Network) startRouterProtocols(name string) {
	r := f.Routers[name]
	opt := f.Opt
	spec, isProxy := f.ProxySpec(name)
	if isProxy {
		px, err := mldproxy.New(r.Node, mldproxy.Config{
			Upstream:   spec.Upstream,
			Downstream: spec.Downstream,
			Anchor:     spec.Anchor,
			Depth:      spec.Depth,
			HostMLD:    opt.HostMLD,
		})
		if err != nil {
			panic(err)
		}
		r.Engine = px
	} else {
		rt := engine.UnicastRouting(f.Dom.TableOf(r.Node))
		if !f.Proxy.Empty() {
			rt = proxyStubRouting{rt, f.Proxy.LinkDomain}
		}
		r.Engine = buildEngine(r.Node, opt, rt)
	}
	r.MLD = mld.NewRouter(r.Node, opt.MLD)
	eng := r.Engine
	r.MLD.OnListenerChange = func(ev mld.ListenerEvent) {
		eng.HandleListenerChange(ev.Iface, ev.Group, ev.Present)
	}
	if isProxy {
		// A proxy performs only the host portion of MLD on its upstream
		// interface (RFC 4605 §4.2); the router role there would contest
		// the querier election against the parent.
		for _, ifc := range r.Node.Ifaces {
			if ifc.Link != nil && ifc.Link.Name == spec.Upstream {
				r.MLD.Disable(ifc)
			}
		}
	}
	r.NDP = ndp.NewRouter(r.Node, opt.NDP, func(ifc *netem.Interface) (ipv6.Addr, bool) {
		return f.Dom.PrefixOf(ifc.Link)
	})
	// Home agent role on designated links.
	for _, ifc := range r.Node.Ifaces {
		if f.haFor[ifc.Link.Name] != name {
			continue
		}
		r.HAs[ifc.Link.Name] = mipv6.NewHomeAgent(r.Node, ifc, ifc.GlobalAddr(), opt.HA)
	}
}

// CrashRouter fails a router: its protocol engines are closed (every timer
// and ticker they own is cancelled), the node's dispatch state is wiped and
// its interfaces go down. The router stays dark until RestartRouter.
// Callers running core.HAService instances on this router's home agents
// must Stop and rebuild those alongside (the harness wrapper does).
func (f *Network) CrashRouter(name string) {
	r, ok := f.Routers[name]
	if !ok {
		return
	}
	if r.Engine != nil {
		r.Engine.Close()
	}
	if r.MLD != nil {
		r.MLD.Close()
	}
	if r.NDP != nil {
		r.NDP.Close()
	}
	for _, ha := range r.HomeAgents() {
		ha.Close()
	}
	r.Node.Crash()
	if f.obs != nil {
		f.obs.For(r.Node.Sched()).Instant(name, "node "+name, "crash", "")
	}
}

// RestartRouter revives a crashed router: interfaces come back up and the
// protocol stack is rebuilt from scratch — empty neighbor tables, no (S,G)
// state, no listener records, no bindings — exactly what a reboot leaves.
// Recovery then happens in protocol time (hellos, queries, State Refresh,
// mobile-node re-registration).
func (f *Network) RestartRouter(name string) {
	r, ok := f.Routers[name]
	if !ok {
		return
	}
	r.Node.Restart()
	r.HAs = map[string]*mipv6.HomeAgent{}
	f.startRouterProtocols(name)
	if f.obs != nil {
		rec := f.obs.For(r.Node.Sched())
		rec.Instant(name, "node "+name, "restart", "")
		r.Engine.AttachRecorder(rec)
		r.MLD.AttachRecorder(rec)
		for _, ha := range r.HomeAgents() {
			ha.AttachRecorder(rec)
		}
	}
}

// AttachRecorder binds rec to the network's scheduler and attaches it to
// every router engine (PIM, MLD, home agents) and host (mobile node, MLD
// listener), emitting each machine's current state as a baseline. Hosts
// added later via AddHost are attached automatically. Link transmissions
// are not recorded here; use trace.RecordLinks for those (NewFigure1 does
// both when Options.Obs is set).
func (f *Network) AttachRecorder(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	rec.Bind(f.Sched)
	f.obs = rec
	// Sharded runs split the recorder: one child per region (written only
	// by that region's events during windows), merged into rec's stream at
	// every kernel barrier — the merge fold is registered by Build, first
	// among the barrier folds so root events at the barrier time append
	// after all merged (earlier) child events.
	if f.Kern != nil {
		for _, s := range f.regionScheds {
			rec.Shard(s)
		}
	}
	for _, name := range f.routerOrder {
		r, ok := f.Routers[name]
		if !ok {
			continue
		}
		rr := rec.For(r.Node.Sched())
		r.Engine.AttachRecorder(rr)
		r.MLD.AttachRecorder(rr)
		for _, ha := range r.HomeAgents() {
			ha.AttachRecorder(rr)
		}
	}
	hosts := make([]string, 0, len(f.Hosts))
	for name := range f.Hosts {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	for _, name := range hosts {
		f.attachHostRecorder(f.Hosts[name])
	}
}

func (f *Network) attachHostRecorder(h *Host) {
	hr := f.obs.For(h.Node.Sched())
	h.MN.AttachRecorder(hr)
	h.MLD.Obs = hr
}

// AddHost creates an additional mobile-capable host with its home on the
// given link.
func (f *Network) AddHost(name, homeLink string, iid uint64) *Host {
	node := f.Net.NewNode(name, false)
	if f.Part != nil {
		// Hosts live in their home LAN's region (LANs are never split, so
		// the link's scheduler is the region scheduler). Must precede
		// interface attachment and protocol construction — modules capture
		// the node's scheduler.
		node.SetSched(f.Links[homeLink].Sched())
	}
	ifc := node.AddInterface(f.Links[homeLink])
	haRouter := f.Routers[f.haFor[homeLink]]
	var haAddr ipv6.Addr
	for _, rifc := range haRouter.Node.Ifaces {
		if rifc.Link == f.Links[homeLink] {
			haAddr = rifc.GlobalAddr()
		}
	}
	p, _ := f.Dom.PrefixOf(f.Links[homeLink])
	cfg := mipv6.DefaultMNConfig(p, haAddr)
	cfg.BindingLifetime = f.Opt.BindingLifetime
	h := &Host{Name: name, Node: node, Iface: ifc, IID: iid, HomeLink: homeLink}
	h.MN = mipv6.NewMobileNode(node, iid, cfg)
	h.MN.OnDecap = func(outer, inner *ipv6.Packet) {
		h.lastOuterHops = int(ipv6.DefaultHopLimit - outer.Hdr.HopLimit)
	}
	h.MLD = mld.NewHost(node, f.Opt.HostMLD)
	f.Hosts[name] = h
	if f.obs != nil {
		f.attachHostRecorder(h)
	}
	f.Dom.AttachHost(node) // install the host's dynamic route table
	return h
}

// HomeAgentOf returns the home agent serving the host's home link.
func (f *Network) HomeAgentOf(host string) *mipv6.HomeAgent {
	h, ok := f.Hosts[host]
	if !ok {
		return nil
	}
	return f.Routers[f.haFor[h.HomeLink]].HAs[h.HomeLink]
}

// Move reattaches a host to another link (triggering NDP movement
// detection, SLAAC and Mobile IPv6 registration). It panics on an
// invalid move (unknown host or link, cross-region handover); driver
// code that wants to fail one experiment cell instead of the process
// uses TryMove.
func (f *Network) Move(host, link string) {
	if err := f.TryMove(host, link); err != nil {
		panic(err)
	}
}

// TryMove validates a handover and performs it, reporting an invalid
// move as a descriptive error with the live run untouched. In a sharded
// run a host can only roam among links of its current region: a node's
// pending timers and protocol state live in its region's scheduler, so
// a cross-region reattachment would tear the timeline apart. List every
// link one mobile population roams among in Options.MobilityGroups and
// the partition will keep them co-region.
func (f *Network) TryMove(host, link string) error {
	h, ok := f.Hosts[host]
	if !ok {
		return fmt.Errorf("scenario: Move: no host %q", host)
	}
	dst, ok := f.Links[link]
	if !ok {
		return fmt.Errorf("scenario: Move %s: no link %q", host, link)
	}
	if dst.Sched() != h.Node.Sched() {
		cur := "detached"
		if h.Iface.Link != nil {
			cur = h.Iface.Link.Name
		}
		return fmt.Errorf("scenario: cannot move %s from %s to %s: the links run in different shard regions; "+
			"list both in the same Options.MobilityGroups entry so the partition keeps the host's roaming domain in one region",
			host, cur, link)
	}
	if !f.Proxy.Empty() {
		from := ""
		if h.Iface.Link != nil {
			from = h.Iface.Link.Name
		}
		// Anchor-local: both links lie inside the same proxy domain, so
		// the re-join terminates at the domain's anchor (or an inner
		// proxy) and the home agent never hears about it.
		if a := f.Proxy.LinkDomain[from]; a != "" && a == f.Proxy.LinkDomain[link] {
			atomic.AddUint64(&f.anchorLocalHandovers, 1)
		} else {
			atomic.AddUint64(&f.homeRoutedHandovers, 1)
		}
	}
	f.Net.Move(h.Iface, dst)
	return nil
}

// ProxySpec returns the named router's proxy-tree position when the
// build's proxy plan designates it a proxy member.
func (f *Network) ProxySpec(name string) (topo.ProxyNodeSpec, bool) {
	if f.Proxy.Empty() {
		return topo.ProxyNodeSpec{}, false
	}
	spec, ok := f.Proxy.Nodes[name]
	return spec, ok
}

// ProxyOf returns the mldproxy instance running on the named router
// (nil for anchors, non-members, and proxy-disabled builds).
func (f *Network) ProxyOf(name string) *mldproxy.Proxy {
	r, ok := f.Routers[name]
	if !ok || r.Engine == nil {
		return nil
	}
	px, _ := r.Engine.(*mldproxy.Proxy)
	return px
}

// HandoverCounts returns how many handovers stayed inside one proxy
// domain (anchor-local) versus crossed a domain boundary or involved
// non-domain links (home-routed). Both are zero when the proxy
// subsystem is disabled.
func (f *Network) HandoverCounts() (anchorLocal, homeRouted uint64) {
	return atomic.LoadUint64(&f.anchorLocalHandovers), atomic.LoadUint64(&f.homeRoutedHandovers)
}

// Run advances the simulation by d.
func (f *Network) Run(d time.Duration) {
	if f.Kern != nil {
		f.Kern.Run(d)
		return
	}
	f.Sched.RunFor(d)
}

// Now returns the current virtual time: the kernel's barrier clock when
// sharded (safe only between RunUntil calls), the scheduler clock
// otherwise.
func (f *Network) Now() sim.Time {
	if f.Kern != nil {
		return f.Kern.Now()
	}
	return f.Sched.Now()
}

// RunUntil advances the simulation to absolute time t.
func (f *Network) RunUntil(t sim.Time) {
	if f.Kern != nil {
		f.Kern.RunUntil(t)
		return
	}
	f.Sched.RunUntil(t)
}

// Settle runs long enough for NDP/SLAAC, PIM hello exchange and initial MLD
// queries to complete (10 s of virtual time).
func (f *Network) Settle() { f.Run(10 * time.Second) }

// SendLocalMulticast transmits one multicast datagram from the host on its
// current link using its current source address — the paper's approach A
// for mobile senders.
func (f *Network) SendLocalMulticast(host string, group ipv6.Addr, payload []byte) {
	h := f.Hosts[host]
	src := h.MN.CareOf()
	if src.IsUnspecified() {
		src = h.MN.HomeAddress
	}
	u := &ipv6.UDP{SrcPort: WorkloadPort, DstPort: WorkloadPort, Payload: payload}
	pkt := &ipv6.Packet{
		Hdr:     ipv6.Header{Src: src, Dst: group, HopLimit: ipv6.DefaultHopLimit},
		Proto:   ipv6.ProtoUDP,
		Payload: u.Marshal(src, group),
	}
	_ = h.Node.OutputOn(h.Iface, pkt)
}

// TotalSGEntries sums live (S,G) state across all routers — the paper's
// router storage-load criterion.
func (f *Network) TotalSGEntries() int {
	n := 0
	for _, r := range f.Routers {
		n += r.Engine.EntryCount()
	}
	return n
}

// MulticastStats aggregates the control-message counters of all routers,
// whatever engine they run.
func (f *Network) MulticastStats() engine.Stats {
	var t engine.Stats
	for _, name := range f.routerOrder {
		t.Add(f.Routers[name].Engine.MulticastStats())
	}
	return t
}

// PIMStats aggregates the control-message counters of all routers.
//
// Deprecated: use MulticastStats, which serves every registered engine.
func (f *Network) PIMStats() pimdm.Stats { return f.MulticastStats() }
