package scenario

import (
	"testing"
	"testing/quick"
	"time"

	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/sim"
)

func TestBeaconRoundtrip(t *testing.T) {
	b := Beacon{Flow: 7, Seq: 123456, SentAt: sim.Time(42 * time.Second)}
	for _, size := range []int{0, beaconLen, 64, 1400} {
		enc := b.Marshal(size)
		if size >= beaconLen && len(enc) != size {
			t.Errorf("size %d: encoded %d", size, len(enc))
		}
		got, ok := ParseBeacon(enc)
		if !ok || got != b {
			t.Errorf("size %d: roundtrip %+v ok=%v", size, got, ok)
		}
	}
	if _, ok := ParseBeacon([]byte("short")); ok {
		t.Error("parsed short payload")
	}
	bad := b.Marshal(64)
	bad[0] = 'X'
	if _, ok := ParseBeacon(bad); ok {
		t.Error("parsed wrong magic")
	}
}

func TestQuickBeaconRoundtrip(t *testing.T) {
	f := func(flow uint16, seq uint64, at int64, pad uint8) bool {
		b := Beacon{Flow: flow, Seq: seq, SentAt: sim.Time(at)}
		got, ok := ParseBeacon(b.Marshal(beaconLen + int(pad)))
		return ok && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Construction(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	if len(f.Links) != 6 || len(f.Routers) != 5 || len(f.Hosts) != 4 {
		t.Fatalf("links=%d routers=%d hosts=%d", len(f.Links), len(f.Routers), len(f.Hosts))
	}
	// Router attachments per the paper.
	wantIfaces := map[string]int{"A": 2, "B": 2, "C": 1, "D": 3, "E": 2}
	for name, n := range wantIfaces {
		if got := len(f.Routers[name].Node.Ifaces); got != n {
			t.Errorf("router %s has %d interfaces, want %d", name, got, n)
		}
	}
	// One home agent per link, on the designated router.
	haCount := 0
	for _, r := range f.Routers {
		haCount += len(r.HAs)
	}
	if haCount != 6 {
		t.Errorf("%d home agents, want 6", haCount)
	}
	if f.Routers["D"].HAs["L4"] == nil || f.Routers["D"].HAs["L5"] == nil {
		t.Error("D must be home agent for L4 and L5")
	}
	// Hosts start on their home links.
	if f.Hosts["S"].Iface.Link != f.Links["L1"] || f.Hosts["R3"].Iface.Link != f.Links["L4"] {
		t.Error("hosts not on home links")
	}
}

func TestFigure1HostsConfigureAndRegisterHome(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Settle()
	for _, name := range HostNames() {
		h := f.Hosts[name]
		if !h.MN.AtHome() {
			t.Errorf("%s not at home after settle", name)
		}
		if !h.Node.HasAddr(h.MN.HomeAddress) {
			t.Errorf("%s home address not configured", name)
		}
	}
	// HomeAgentOf resolves the designated HA.
	ha := f.HomeAgentOf("R3")
	if ha == nil {
		t.Fatal("no HA for R3")
	}
	if ha != f.Routers["D"].HAs["L4"] {
		t.Error("R3's HA is not D/L4")
	}
}

func TestFigure1MoveRegistersBinding(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Settle()
	f.Move("R3", "L6")
	f.Run(15 * time.Second)
	h := f.Hosts["R3"]
	if h.MN.AtHome() || !h.MN.Registered() {
		t.Fatalf("R3 atHome=%v registered=%v", h.MN.AtHome(), h.MN.Registered())
	}
	p, _ := f.Dom.PrefixOf(f.Links["L6"])
	if !h.MN.CareOf().MatchesPrefix(p, 64) {
		t.Errorf("care-of %s not from L6 prefix", h.MN.CareOf())
	}
	if _, ok := f.HomeAgentOf("R3").BindingFor(h.MN.HomeAddress); !ok {
		t.Error("no binding at D")
	}
}

func TestCBRRateAndBeacons(t *testing.T) {
	s := sim.NewScheduler(1)
	var got []Beacon
	c := NewCBR(s, 3, 100*time.Millisecond, 64, func(p []byte) {
		b, ok := ParseBeacon(p)
		if !ok {
			t.Fatal("bad beacon")
		}
		got = append(got, b)
	})
	s.RunUntil(sim.Time(10 * time.Second))
	c.Stop()
	s.RunUntil(sim.Time(20 * time.Second))
	if len(got) != 100 {
		t.Fatalf("sent %d datagrams in 10s at 10/s", len(got))
	}
	for i, b := range got {
		if b.Seq != uint64(i+1) || b.Flow != 3 {
			t.Fatalf("beacon %d = %+v", i, b)
		}
	}
	if c.Sent != 100 {
		t.Fatalf("Sent = %d", c.Sent)
	}
	// 64-byte payload at 10/s: (40+8+64)*8*10 bits/s.
	if r := c.BitRate(); r != 8960 {
		t.Fatalf("BitRate = %v", r)
	}
}

func TestAttachProbeRecordsHops(t *testing.T) {
	s := sim.NewScheduler(1)
	net := netem.New(s)
	l := net.NewLink("L", 0, 0)
	a := net.NewNode("a", false)
	b := net.NewNode("b", false)
	ia := a.AddInterface(l)
	ib := b.AddInterface(l)
	src := ipv6.MustParseAddr("2001:db8:1::1")
	ia.AddAddr(src)
	ib.JoinGroup(Group)

	probe := metrics.NewFlowProbe("b")
	AttachProbe(b, s, 9, probe, nil)

	payload := Beacon{Flow: 9, Seq: 1, SentAt: 0}.Marshal(64)
	u := &ipv6.UDP{SrcPort: WorkloadPort, DstPort: WorkloadPort, Payload: payload}
	pkt := &ipv6.Packet{
		Hdr:     ipv6.Header{Src: src, Dst: Group, HopLimit: 61}, // as if 3 hops happened
		Proto:   ipv6.ProtoUDP,
		Payload: u.Marshal(src, Group),
	}
	_ = a.OutputOn(ia, pkt)
	// A beacon of the wrong flow must be ignored.
	payload2 := Beacon{Flow: 8, Seq: 2, SentAt: 0}.Marshal(64)
	u2 := &ipv6.UDP{SrcPort: WorkloadPort, DstPort: WorkloadPort, Payload: payload2}
	pkt2 := &ipv6.Packet{
		Hdr:     ipv6.Header{Src: src, Dst: Group, HopLimit: 64},
		Proto:   ipv6.ProtoUDP,
		Payload: u2.Marshal(src, Group),
	}
	_ = a.OutputOn(ia, pkt2)
	s.Run()

	if probe.Count() != 1 {
		t.Fatalf("probe count = %d", probe.Count())
	}
	if probe.Deliveries[0].Hops != 3 {
		t.Fatalf("hops = %d", probe.Deliveries[0].Hops)
	}
}

func TestSendLocalMulticastUsesCurrentAddress(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Settle()
	var srcs []ipv6.Addr
	f.Links["L1"].AddTap(func(ev netem.TxEvent) {
		if ev.Pkt.Proto == ipv6.ProtoUDP && ev.Pkt.Hdr.Dst == Group {
			srcs = append(srcs, ev.Pkt.Hdr.Src)
		}
	})
	f.SendLocalMulticast("S", Group, Beacon{Flow: 1, Seq: 1}.Marshal(64))
	f.Run(time.Second)
	if len(srcs) != 1 || srcs[0] != f.Hosts["S"].MN.HomeAddress {
		t.Fatalf("srcs = %v", srcs)
	}
}

func TestTotalSGAndStatsAggregation(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	f.Hosts["R3"].MLD.Join(f.Hosts["R3"].Iface, Group)
	f.Settle()
	// Drive a few datagrams so state exists.
	for i := 0; i < 5; i++ {
		f.SendLocalMulticast("S", Group, Beacon{Flow: 1, Seq: uint64(i)}.Marshal(64))
		f.Run(time.Second)
	}
	if f.TotalSGEntries() == 0 {
		t.Error("no (S,G) state after traffic")
	}
	st := f.PIMStats()
	if st.HellosSent == 0 || st.DataArrived == 0 {
		t.Errorf("aggregated stats empty: %+v", st)
	}
}

func TestAddHostJoinsRoutingDomain(t *testing.T) {
	f := NewFigure1(DefaultOptions())
	h := f.AddHost("X1", "L3", 0x7777)
	f.Settle()
	if !h.MN.AtHome() {
		t.Fatal("added host not at home")
	}
	// Its HA must be router C (designated for L3).
	if h.MN.Config.HomeAgent != f.Routers["C"].HAs["L3"].Address {
		t.Errorf("HA addr = %s", h.MN.Config.HomeAgent)
	}
}
