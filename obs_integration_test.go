package mip6mcast

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mip6mcast/internal/core"
	"mip6mcast/internal/exp"
	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/trace"
)

// buildHandover assembles the Figure 1 network with the paper's services
// on every host, a CBR source on S, and R3's handover to Link 6 at moveAt.
func buildHandover(opt scenario.Options, approach Approach, moveAt time.Duration) *scenario.Network {
	opt.HostMLD = core.RecommendedHostMLD(approach, opt.HostMLD)
	f := scenario.NewFigure1(opt)
	for _, name := range scenario.RouterNames() {
		r := f.Routers[name]
		for _, ha := range r.HomeAgents() {
			core.NewHAService(ha, r.Engine, nil, opt.MLD)
		}
	}
	svcs := map[string]*core.Service{}
	for _, name := range scenario.HostNames() {
		h := f.Hosts[name]
		svcs[name] = core.NewService(h.MN, h.MLD, approach, opt.MLD)
	}
	for _, r := range []string{"R1", "R2", "R3"} {
		svcs[r].Join(scenario.Group)
	}
	scenario.NewCBR(f.Sched, 1, time.Second, 64, func(p []byte) {
		svcs["S"].Send(scenario.Group, p)
	})
	if moveAt > 0 {
		f.Sched.Schedule(moveAt, func() { f.Move("R3", "L6") })
	}
	return f
}

// The recorded stream must be bit-reproducible for a fixed seed no matter
// how many workers drive sibling timelines — the acceptance bar for using
// traces to debug sweep results.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) map[string][]byte {
		var mu sync.Mutex
		recs := map[string]*obs.Recorder{}
		ctx := exp.Context{
			Opt:        FastMLDOptions(10),
			Replicates: 2,
			Workers:    workers,
			Recorder: func(pt, rep int) *obs.Recorder {
				r := obs.NewRecorder(nil)
				mu.Lock()
				recs[fmt.Sprintf("%d/%d", pt, rep)] = r
				mu.Unlock()
				return r
			},
		}
		moves := []time.Duration{12 * time.Second, 18 * time.Second}
		exp.Sweep(ctx, exp.SweepSpec{
			Points:  []string{"early", "late"},
			Columns: []string{"events"},
			Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
				f := buildHandover(opt, BidirectionalTunnel, moves[pt])
				f.Run(30 * time.Second)
				return map[string]float64{"events": float64(f.Sched.Processed())}, nil
			},
		})
		out := map[string][]byte{}
		for k, r := range recs {
			var buf bytes.Buffer
			if err := r.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			if r.Len() == 0 {
				t.Fatalf("cell %s recorded nothing", k)
			}
			out[k] = buf.Bytes()
		}
		return out
	}

	serial, parallel := run(1), run(8)
	if len(serial) != 4 || len(parallel) != 4 {
		t.Fatalf("cell counts: %d vs %d, want 4", len(serial), len(parallel))
	}
	for k, a := range serial {
		b, ok := parallel[k]
		if !ok {
			t.Fatalf("cell %s missing from parallel run", k)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("cell %s: JSONL differs between workers=1 and workers=8", k)
		}
	}
}

// Same reproducibility bar under heavy State Refresh traffic. Refresh
// propagation fans out on every downstream interface of every router each
// interval, so an emission order that depends on map iteration (the bug this
// guards against) shows up here as a trace diff between worker counts.
func TestTraceDeterministicStateRefresh(t *testing.T) {
	run := func(workers int) map[string][]byte {
		var mu sync.Mutex
		recs := map[string]*obs.Recorder{}
		opt := FastMLDOptions(10)
		opt.PIM.StateRefreshInterval = 2 * time.Second
		ctx := exp.Context{
			Opt:        opt,
			Replicates: 2,
			Workers:    workers,
			Recorder: func(pt, rep int) *obs.Recorder {
				r := obs.NewRecorder(nil)
				mu.Lock()
				recs[fmt.Sprintf("%d/%d", pt, rep)] = r
				mu.Unlock()
				return r
			},
		}
		exp.Sweep(ctx, exp.SweepSpec{
			Points:  []string{"refresh"},
			Columns: []string{"events"},
			Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
				f := buildHandover(opt, BidirectionalTunnel, 15*time.Second)
				f.Run(30 * time.Second)
				return map[string]float64{"events": float64(f.Sched.Processed())}, nil
			},
		})
		out := map[string][]byte{}
		for k, r := range recs {
			var buf bytes.Buffer
			if err := r.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			out[k] = buf.Bytes()
		}
		return out
	}

	serial, parallel := run(1), run(8)
	if len(serial) != 2 || len(parallel) != 2 {
		t.Fatalf("cell counts: %d vs %d, want 2", len(serial), len(parallel))
	}
	for k, a := range serial {
		if !bytes.Contains(a, []byte("pim-staterefresh")) {
			t.Errorf("cell %s recorded no State Refresh traffic; scenario not exercising the fix", k)
		}
		if !bytes.Equal(a, parallel[k]) {
			t.Errorf("cell %s: JSONL differs between workers=1 and workers=8 with State Refresh on", k)
		}
	}
}

// The Perfetto export of the Figure 1 handover must carry per-node
// state-machine tracks: the mobile node's binding lifecycle, the home
// agent's binding cache, PIM per-(S,G) machines and MLD listener state.
func TestPerfettoHandoverTracks(t *testing.T) {
	opt := FastMLDOptions(10)
	opt.Seed = 1
	rec := obs.NewRecorder(nil)
	opt.Obs = rec
	f := buildHandover(opt, BidirectionalTunnel, 15*time.Second)
	f.Run(40 * time.Second)

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	procByPid := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procByPid[e.Pid] = e.Args["name"].(string)
		}
	}
	tracks := map[string][]string{} // node -> thread names
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			node := procByPid[e.Pid]
			tracks[node] = append(tracks[node], e.Args["name"].(string))
		}
	}

	has := func(node, prefix string) bool {
		for _, tr := range tracks[node] {
			if len(tr) >= len(prefix) && tr[:len(prefix)] == prefix {
				return true
			}
		}
		return false
	}
	if !has("R3", "mip binding") {
		t.Errorf("R3 has no binding state track (tracks: %v)", tracks["R3"])
	}
	if !has("R3", "mld member") {
		t.Errorf("R3 has no MLD membership track (tracks: %v)", tracks["R3"])
	}
	haFound := false
	for _, name := range scenario.RouterNames() {
		if has(name, "ha ") {
			haFound = true
		}
	}
	if !haFound {
		t.Error("no router exposes a home-agent binding track")
	}
	pimFound, mldFound := false, false
	for _, name := range scenario.RouterNames() {
		if has(name, "pim ") {
			pimFound = true
		}
		if has(name, "mld ") {
			mldFound = true
		}
	}
	if !pimFound || !mldFound {
		t.Errorf("router protocol tracks missing: pim=%v mld=%v", pimFound, mldFound)
	}
	if len(tracks["net"]) == 0 {
		t.Error("no link tracks under the synthetic net process")
	}

	// The handover must actually show up as binding-state slices on R3.
	sawAway := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && procByPid[e.Pid] == "R3" && e.Name == "away-registered" {
			sawAway = true
		}
	}
	if !sawAway {
		t.Error("handover left no away-registered slice on R3's binding track")
	}
}

// Every wire event the Figure 1 scenarios produce must decode to a named
// kind: a fallback ("pim?", "icmp6?", "none") in the trace means the
// decoder lost track of a message type some protocol actually sends.
func TestFigure1TraceKindsKnown(t *testing.T) {
	opt := FastMLDOptions(10)
	opt.Seed = 1
	c := &trace.Collector{}
	f := buildHandover(opt, BidirectionalTunnel, 15*time.Second)
	c.Attach(f.Net)
	f.Run(40 * time.Second)

	kinds := c.Kinds()
	if len(kinds) == 0 {
		t.Fatal("collector saw no traffic")
	}
	for k, n := range kinds {
		if !trace.IsKnownKind(k) {
			t.Errorf("kind %q (%d events) not in the known-kind list", k, n)
		}
		if trace.IsFallbackKind(k) {
			t.Errorf("fallback kind %q appeared %d times in a Figure 1 run", k, n)
		}
	}
}
