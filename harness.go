package mip6mcast

import (
	"time"

	"mip6mcast/internal/core"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

func secs(n int) time.Duration { return time.Duration(n) * time.Second }

// defaultProxyDepth gives proxy-hierarchy builds a plan when the caller
// did not configure one: depth 2 peels Figure 1 (and any tree-shaped
// procedural topology) into its edge proxy domains via
// topo.AutoProxyDomains. Non-proxy approaches pass through untouched.
func defaultProxyDepth(opt scenario.Options, approach Approach) scenario.Options {
	if approach.Receive == core.ReceiveProxy && opt.ProxyDepth == 0 {
		opt.ProxyDepth = 2
	}
	return opt
}

// Run is one assembled experiment instance: the Figure 1 network with the
// core services attached under a single approach, a CBR source at host S,
// and delivery probes on the receivers.
type Run struct {
	F        *scenario.Network
	Approach Approach

	Services   map[string]*core.Service
	HAServices []*core.HAService
	Probes     map[string]*metrics.FlowProbe
	CBR        *scenario.CBR

	watchers map[string]*LinkWatch
}

// LinkWatch tracks multicast data-class traffic on one link with
// timestamps (for leave-delay and waste measurements).
type LinkWatch struct {
	Frames      int
	Bytes       uint64
	First, Last sim.Time
	seen        bool
	samples     []linkSample
}

type linkSample struct {
	at    sim.Time
	bytes int
}

// BytesAfter returns data bytes transmitted strictly after t.
func (w *LinkWatch) BytesAfter(t sim.Time) uint64 {
	var total uint64
	for i := len(w.samples) - 1; i >= 0; i-- {
		if w.samples[i].at <= t {
			break
		}
		total += uint64(w.samples[i].bytes)
	}
	return total
}

// FramesBetween counts data frames in (from, to].
func (w *LinkWatch) FramesBetween(from, to sim.Time) int {
	n := 0
	for _, s := range w.samples {
		if s.at > from && s.at <= to {
			n++
		}
	}
	return n
}

// NewRun builds the network and attaches the full approach stack. The
// receivers R1, R2, R3 join the group; S drives a CBR flow through its
// service (so its send mode follows the approach).
func NewRun(opt scenario.Options, approach Approach, cbrInterval time.Duration, cbrSize int) *Run {
	opt.HostMLD = core.RecommendedHostMLD(approach, opt.HostMLD)
	opt = defaultProxyDepth(opt, approach)
	f := scenario.NewFigure1(opt)
	r := &Run{
		F:        f,
		Approach: approach,
		Services: map[string]*core.Service{},
		Probes:   map[string]*metrics.FlowProbe{},
		watchers: map[string]*LinkWatch{},
	}

	// Home-agent services on every HA (PIM-enabled: the routers are the
	// multicast routers in Figure 1).
	for _, name := range scenario.RouterNames() {
		router := f.Routers[name]
		for _, ha := range router.HomeAgents() {
			r.HAServices = append(r.HAServices, core.NewHAService(ha, router.Engine, nil, opt.MLD))
		}
	}

	// Host services.
	for _, name := range scenario.HostNames() {
		h := f.Hosts[name]
		r.Services[name] = core.NewService(h.MN, h.MLD, approach, opt.MLD)
	}

	// Receivers join and get probes.
	for _, name := range []string{"R1", "R2", "R3"} {
		r.Services[name].Join(scenario.Group)
		probe := metrics.NewFlowProbe(name)
		r.Probes[name] = probe
		h := f.Hosts[name]
		scenario.AttachProbe(h.Node, f.Sched, 1, probe, h.OuterHops)
	}

	// The sender's CBR flow goes through its service.
	svc := r.Services["S"]
	r.CBR = scenario.NewCBR(f.Sched, 1, cbrInterval, cbrSize, func(payload []byte) {
		svc.Send(scenario.Group, payload)
	})
	return r
}

// AddMobileReceiver adds an extra mobile receiver host (home on homeLink)
// with a core service under the run's approach and a delivery probe.
func (r *Run) AddMobileReceiver(name, homeLink string, iid uint64) *core.Service {
	h := r.F.AddHost(name, homeLink, iid)
	svc := core.NewService(h.MN, h.MLD, r.Approach, r.F.Opt.MLD)
	r.Services[name] = svc
	probe := metrics.NewFlowProbe(name)
	r.Probes[name] = probe
	scenario.AttachProbe(h.Node, r.F.Sched, 1, probe, h.OuterHops)
	return svc
}

// CrashRouter fails a router including the harness-level home-agent
// services riding on it: each affected core.HAService is stopped (its
// tunnel-query ticker and listener timers die with the router) and removed,
// then the scenario-level crash tears down the protocol engines and node.
func (r *Run) CrashRouter(name string) {
	router, ok := r.F.Routers[name]
	if !ok {
		return
	}
	for _, ha := range router.HomeAgents() {
		if svc := r.HAServiceFor(ha); svc != nil {
			svc.Stop()
			for i, s := range r.HAServices {
				if s == svc {
					r.HAServices = append(r.HAServices[:i], r.HAServices[i+1:]...)
					break
				}
			}
		}
	}
	r.F.CrashRouter(name)
}

// RestartRouter revives a crashed router and rebuilds its home-agent
// services on the fresh engines (same wiring as NewRun).
func (r *Run) RestartRouter(name string) {
	router, ok := r.F.Routers[name]
	if !ok {
		return
	}
	r.F.RestartRouter(name)
	for _, ha := range router.HomeAgents() {
		r.HAServices = append(r.HAServices, core.NewHAService(ha, router.Engine, nil, r.F.Opt.MLD))
	}
}

// WatchLink starts (or returns) a data-class watcher on a link.
func (r *Run) WatchLink(name string) *LinkWatch {
	if w, ok := r.watchers[name]; ok {
		return w
	}
	w := &LinkWatch{}
	r.watchers[name] = w
	sched := r.F.Sched
	r.F.Links[name].AddTap(func(ev netem.TxEvent) {
		split := metrics.Split(ev.Pkt, len(ev.Frame))
		data := split[metrics.ClassData] + split[metrics.ClassTunnel]
		if split[metrics.ClassData] == 0 {
			return
		}
		w.Frames++
		w.Bytes += uint64(data)
		if !w.seen {
			w.First = sched.Now()
			w.seen = true
		}
		w.Last = sched.Now()
		w.samples = append(w.samples, linkSample{at: sched.Now(), bytes: data})
	})
	return w
}

// MoveHost reattaches a host and returns the (virtual) time of the move.
func (r *Run) MoveHost(host, link string) sim.Time {
	r.F.Move(host, link)
	return r.F.Sched.Now()
}

// JoinDelay computes how long after t the named receiver next received a
// datagram. ok is false if it never did.
func (r *Run) JoinDelay(receiver string, t sim.Time) (time.Duration, bool) {
	d, ok := r.Probes[receiver].FirstAfter(t)
	if !ok {
		return 0, false
	}
	return d.At.Sub(t), true
}

// ControlBytes sums the signaling classes (MLD + PIM + Mobile IPv6) over
// all links.
func (r *Run) ControlBytes() uint64 {
	a := r.F.Acct
	return a.TotalBytes(metrics.ClassMLD) + a.TotalBytes(metrics.ClassPIM) + a.TotalBytes(metrics.ClassMIPv6)
}

// HALoad sums home-agent packet-processing work (the paper's system-load
// criterion): intercepts, encapsulations and decapsulations.
func (r *Run) HALoad() uint64 {
	var t uint64
	for _, svc := range r.HAServices {
		ha := svc.HA
		t += ha.PacketsIntercepted + ha.PacketsTunneled + ha.PacketsDetunneled
	}
	return t
}

// HAServiceFor returns the HA service bound to the given home agent.
func (r *Run) HAServiceFor(ha *mipv6.HomeAgent) *core.HAService {
	for _, svc := range r.HAServices {
		if svc.HA == ha {
			return svc
		}
	}
	return nil
}

// OptimalRouterHops returns the unicast shortest-path router count between
// two links (the routing-optimality yardstick).
func (r *Run) OptimalRouterHops(fromLink, toLink string) int {
	if fromLink == toLink {
		return 0
	}
	f := r.F
	// Use the designated router of fromLink as the path's first router.
	for _, name := range scenario.RouterNames() {
		router := f.Routers[name]
		for _, ifc := range router.Node.Ifaces {
			if ifc.Link == f.Links[fromLink] {
				p, _ := f.Dom.PrefixOf(f.Links[toLink])
				if hops, ok := f.Dom.TableOf(router.Node).HopsTo(p.WithInterfaceID(1)); ok {
					return hops
				}
			}
		}
	}
	return -1
}
