package mip6mcast

import (
	"testing"
	"time"

	"mip6mcast/internal/metrics"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

func TestNewRunWiring(t *testing.T) {
	r := NewRun(DefaultOptions(), LocalMembership, 100*time.Millisecond, 64)
	if len(r.Services) != 4 {
		t.Fatalf("services = %d", len(r.Services))
	}
	if len(r.HAServices) != 6 {
		t.Fatalf("HA services = %d, want one per link", len(r.HAServices))
	}
	if len(r.Probes) != 3 {
		t.Fatalf("probes = %d", len(r.Probes))
	}
	r.F.Run(30 * time.Second)
	if r.CBR.Sent < 290 {
		t.Fatalf("CBR sent %d", r.CBR.Sent)
	}
	for name, p := range r.Probes {
		if p.Count() == 0 {
			t.Errorf("probe %s empty", name)
		}
	}
}

func TestRunApproachAdaptsHostMLD(t *testing.T) {
	// Tunnel-receive approaches must not re-report on foreign links.
	r := NewRun(DefaultOptions(), BidirectionalTunnel, 100*time.Millisecond, 64)
	if r.F.Opt.HostMLD.ResendOnMove {
		t.Fatal("ResendOnMove left enabled for tunnel reception")
	}
	r2 := NewRun(DefaultOptions(), LocalMembership, 100*time.Millisecond, 64)
	if !r2.F.Opt.HostMLD.ResendOnMove {
		t.Fatal("ResendOnMove disabled for local membership")
	}
}

func TestLinkWatchWindows(t *testing.T) {
	r := NewRun(DefaultOptions(), LocalMembership, 100*time.Millisecond, 64)
	w := r.WatchLink("L4")
	r.F.Run(10 * time.Second)
	mid := r.F.Sched.Now()
	r.F.Run(10 * time.Second)

	if w.Frames == 0 || w.Bytes == 0 {
		t.Fatal("watcher saw nothing")
	}
	after := w.BytesAfter(mid)
	if after == 0 || after >= w.Bytes {
		t.Fatalf("BytesAfter(mid) = %d of %d", after, w.Bytes)
	}
	n := w.FramesBetween(mid, r.F.Sched.Now())
	// ~100 frames in the second window.
	if n < 90 || n > 110 {
		t.Fatalf("FramesBetween = %d", n)
	}
	if w.First >= w.Last {
		t.Fatalf("First=%v Last=%v", w.First, w.Last)
	}
	// Same watcher handle on re-watch.
	if r.WatchLink("L4") != w {
		t.Fatal("WatchLink not idempotent")
	}
}

func TestJoinDelayHelper(t *testing.T) {
	r := NewRun(DefaultOptions(), LocalMembership, 100*time.Millisecond, 64)
	r.F.Run(20 * time.Second)
	// Delay relative to a past instant is the next delivery after it.
	d, ok := r.JoinDelay("R1", sim.Time(10*time.Second))
	if !ok || d < 0 || d > 200*time.Millisecond {
		t.Fatalf("JoinDelay = %v ok=%v", d, ok)
	}
	if _, ok := r.JoinDelay("R1", sim.Time(10*time.Hour)); ok {
		t.Fatal("future JoinDelay returned ok")
	}
}

func TestControlBytesAndHALoad(t *testing.T) {
	r := NewRun(DefaultOptions(), BidirectionalTunnel, 100*time.Millisecond, 64)
	r.F.Run(20 * time.Second)
	if r.ControlBytes() == 0 {
		t.Fatal("no control bytes with PIM+MLD running")
	}
	if r.HALoad() != 0 {
		t.Fatalf("HA load %d while everyone is at home", r.HALoad())
	}
	r.MoveHost("R3", "L6")
	r.F.Run(60 * time.Second)
	if r.HALoad() == 0 {
		t.Fatal("no HA load with a tunneled receiver")
	}
}

func TestOptimalRouterHops(t *testing.T) {
	r := NewRun(DefaultOptions(), LocalMembership, time.Second, 64)
	cases := []struct {
		from, to string
		want     int
	}{
		{"L1", "L1", 0},
		{"L1", "L2", 1},
		{"L1", "L4", 3},
		{"L1", "L6", 4},
		{"L4", "L1", 3},
	}
	for _, c := range cases {
		if got := r.OptimalRouterHops(c.from, c.to); got != c.want {
			t.Errorf("OptimalRouterHops(%s,%s) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestAddMobileReceiverIntegrates(t *testing.T) {
	r := NewRun(FastMLDOptions(30), LocalMembership, 100*time.Millisecond, 64)
	svc := r.AddMobileReceiver("X1", "L4", 0x7001)
	svc.Join(scenario.Group)
	r.F.Run(30 * time.Second)
	if r.Probes["X1"].Count() < 250 {
		t.Fatalf("extra receiver got %d", r.Probes["X1"].Count())
	}
	// And it roams like any host.
	moveAt := r.MoveHost("X1", "L6")
	r.F.Run(30 * time.Second)
	if d, ok := r.JoinDelay("X1", moveAt); !ok || d > 2*time.Second {
		t.Fatalf("extra receiver join delay = %v ok=%v", d, ok)
	}
}

func TestDeterminismAcrossIdenticalRuns(t *testing.T) {
	run := func() (uint64, int, uint64) {
		r := NewRun(DefaultOptions(), BidirectionalTunnel, 100*time.Millisecond, 64)
		r.F.Run(30 * time.Second)
		r.MoveHost("R3", "L6")
		r.F.Run(60 * time.Second)
		return r.F.Acct.TotalAll(), r.Probes["R3"].Count(), r.F.PIMStats().DataForwarded
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("identical seeds diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
	opt := DefaultOptions()
	opt.Seed = 99
	r := NewRun(opt, BidirectionalTunnel, 100*time.Millisecond, 64)
	r.F.Run(30 * time.Second)
	r.MoveHost("R3", "L6")
	r.F.Run(60 * time.Second)
	if r.F.Acct.TotalAll() == a1 && r.Probes["R3"].Count() == b1 && r.F.PIMStats().DataForwarded == c1 {
		t.Log("different seed produced identical aggregate (possible but suspicious)")
	}
}

func TestMetricsClassesPresent(t *testing.T) {
	// A tunnel run must populate every class the system generates.
	r := NewRun(DefaultOptions(), BidirectionalTunnel, 100*time.Millisecond, 64)
	r.F.Run(30 * time.Second)
	r.MoveHost("R3", "L6")
	r.F.Run(60 * time.Second)
	for _, c := range []metrics.Class{
		metrics.ClassData, metrics.ClassTunnel, metrics.ClassMLD,
		metrics.ClassNDP, metrics.ClassPIM, metrics.ClassMIPv6,
	} {
		if r.F.Acct.TotalBytes(c) == 0 {
			t.Errorf("class %s never seen on any link", c)
		}
	}
}
