package mip6mcast

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mip6mcast/internal/obs"
)

// TestFigure1GoldenTrace pins the Figure 1 build to a committed golden
// trace: the full-stack handover scenario (BidirectionalTunnel services,
// 1 s CBR on S, R3's move to L6 at 15 s, 40 s horizon, seed 42) must emit
// a byte-identical JSONL timeline. The golden file was captured from the
// hand-wired NewFigure1 before the build was re-expressed as a topo
// blueprint; any divergence means the generalized builder changed the
// construction order, an engine start order, or a timer phase — exactly
// the regressions a topology refactor can silently introduce.
//
// Regenerate (only when an intentional protocol/timeline change lands)
// with: UPDATE_FIG1_GOLDEN=1 go test -run TestFigure1GoldenTrace .
func TestFigure1GoldenTrace(t *testing.T) {
	opt := FastMLDOptions(10)
	opt.Seed = 42
	rec := obs.NewRecorder(nil)
	opt.Obs = rec
	f := buildHandover(opt, BidirectionalTunnel, 15*time.Second)
	f.Run(40 * time.Second)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorded nothing")
	}

	path := filepath.Join("testdata", "fig1_golden.jsonl")
	if os.Getenv("UPDATE_FIG1_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events, %d bytes)", path, rec.Len(), buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_FIG1_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		// Locate the first diverging line for a useful failure message.
		wl := bytes.Split(want, []byte("\n"))
		gl := bytes.Split(buf.Bytes(), []byte("\n"))
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if !bytes.Equal(wl[i], gl[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n golden: %s\n    got: %s",
					i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("trace length diverges from golden: %d vs %d lines", len(wl), len(gl))
	}
}
