package mip6mcast

import (
	"testing"
	"time"

	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

// TestChurnInvariants drives random mobility for half an hour of virtual
// time and checks the system never wedges or leaks:
//
//   - after a final settling period every receiver is streaming again;
//   - PIM (S,G) state is bounded (stale trees expire on the data timeout);
//   - each mobile host has at most one binding, at the right home agent;
//   - MLD listener state exists only where members are.
func TestChurnInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn run")
	}
	for _, approach := range Approaches() {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			r := NewRun(FastMLDOptions(20), approach, 100*time.Millisecond, 64)
			f := r.F
			rng := f.Sched.Rand()
			links := scenario.LinkNames()

			// R3 and S hop to a random link every 45-90 s until the churn
			// phase ends.
			churning := true
			var hop func(host string)
			hop = func(host string) {
				f.Sched.Schedule(time.Duration(45+rng.Intn(45))*time.Second, func() {
					if !churning {
						return
					}
					r.MoveHost(host, links[rng.Intn(len(links))])
					hop(host)
				})
			}
			hop("R3")
			hop("S")

			peakSG := 0
			sim.NewTicker(f.Sched, 5*time.Second, 0, func() {
				if n := f.TotalSGEntries(); n > peakSG {
					peakSG = n
				}
			})

			f.Run(30 * time.Minute)
			churning = false
			// Settle longer than the 210 s PIM data timeout so stale trees
			// from the last sender moves can decay.
			settleStart := f.Sched.Now()
			f.Run(5 * time.Minute)

			// Liveness: every receiver streams during the settle window.
			finalMinute := settleStart + sim.Time(4*time.Minute)
			for _, name := range []string{"R1", "R2", "R3"} {
				n := r.Probes[name].CountBetween(finalMinute, sim.Time(1<<62))
				if n < 500 {
					t.Errorf("%s received only %d in the final minute (wedged?)", name, n)
				}
			}

			// State bounds: with one live source and the 210 s data
			// timeout, stale trees from sender churn are bounded by the
			// moves that fit in one timeout window (~5) × 5 routers, plus
			// the live tree.
			if peakSG > 6*5 {
				t.Errorf("peak (S,G) state %d exceeds churn bound", peakSG)
			}
			// After the settle only the live tree may remain: one (S,G)
			// in at most each of the 5 routers.
			if n := f.TotalSGEntries(); n > 5 {
				t.Errorf("final (S,G) state %d has not decayed to the live tree", n)
			}

			// Binding sanity: at most one binding per host, each at the
			// host's designated home agent.
			for _, host := range scenario.HostNames() {
				h := f.Hosts[host]
				found := 0
				for _, rt := range f.Routers {
					for _, ha := range rt.HAs {
						if _, ok := ha.BindingFor(h.MN.HomeAddress); ok {
							found++
							if ha != f.HomeAgentOf(host) {
								t.Errorf("%s bound at the wrong home agent", host)
							}
						}
					}
				}
				if found > 1 {
					t.Errorf("%s has %d bindings", host, found)
				}
				if h.MN.AtHome() && found != 0 {
					t.Errorf("%s at home but still bound", host)
				}
				if !h.MN.AtHome() && h.MN.Registered() && found != 1 {
					t.Errorf("%s registered but %d bindings", host, found)
				}
			}
		})
	}
}
