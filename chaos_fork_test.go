package mip6mcast

import (
	"reflect"
	"strings"
	"testing"

	"mip6mcast/internal/checkpoint"
	"mip6mcast/internal/scenario"
)

// A chaos cell forked from a checkpointed warm prefix must reach exactly
// the verdict a cold run of the same cell reaches — the property that
// lets mip6simd warm the shared 0–15 s prefix once and fork all ten
// cells from the artifact.
func TestChaosCellForkFromWarmCheckpoint(t *testing.T) {
	opt := chaosTune(scenario.DefaultOptions())
	opt.Seed = 11

	// Cold reference: the cell's full timeline in one piece.
	cold := runChaosOne(opt, LocalMembership, chaosMatrix()[1], "") // loss-10

	// Warm the shared prefix once and checkpoint it.
	warm := StartChaos(opt)
	cp := checkpoint.Capture(warm.F, checkpoint.Meta{
		Experiment: "chaos", Seed: opt.Seed, Engine: opt.EngineName(),
	})

	// Fork: restore the warm prefix into a fresh run, then drive the cell.
	var forked *Run
	if _, err := checkpoint.Restore(cp, func() (*scenario.Network, error) {
		forked = StartChaos(opt)
		return forked.F, nil
	}); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	out, err := RunChaosCell(forked, "loss-10", "")
	if err != nil {
		t.Fatalf("RunChaosCell: %v", err)
	}

	if !reflect.DeepEqual(cold, out) {
		t.Fatalf("forked outcome diverged from cold run:\ncold:   %+v\nforked: %+v", cold, out)
	}
}

func TestRunChaosCellUnknownCell(t *testing.T) {
	opt := chaosTune(scenario.DefaultOptions())
	if _, err := RunChaosCell(StartChaos(opt), "no-such-cell", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown cell") {
		t.Fatalf("unknown cell error = %v", err)
	}
}

func TestChaosCellsListsMatrix(t *testing.T) {
	names := ChaosCells()
	if len(names) != len(chaosMatrix()) || names[0] != "baseline" {
		t.Fatalf("ChaosCells() = %v", names)
	}
}
