#!/bin/sh
# Full pre-merge gate: build, vet, and the test suite under the race
# detector. The race run matters because the experiment registry fans
# replicate timelines across goroutines (internal/exp.Sweep and the root
# package's workers=8 determinism tests exercise it).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Allocation-regression gate. The alloc-budget tests carry //go:build !race
# (the race runtime's instrumented allocation counts are meaningless), so the
# race pass above skips them; run them in a plain pass here.
go test -run 'AllocFree|AllocBudget' ./internal/sim ./internal/netem ./internal/ipv6
