#!/bin/sh
# Full pre-merge gate: build, vet, and the test suite under the race
# detector. The race run matters because the experiment registry fans
# replicate timelines across goroutines (internal/exp.Sweep and the root
# package's workers=8 determinism tests exercise it).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Allocation-regression gate. The alloc-budget tests carry //go:build !race
# (the race runtime's instrumented allocation counts are meaningless), so the
# race pass above skips them; run them in a plain pass here.
go test -run 'AllocFree|AllocBudget' ./internal/sim ./internal/netem ./internal/ipv6

# Chaos determinism smoke: the full fault-injection matrix at a fixed seed
# must produce byte-identical per-timeline JSONL traces AND a byte-identical
# sampled telemetry series (-telemetry-out writes the master-seed cell's
# series into the same directory, so the recursive diff covers both)
# whether the sweep runs serially or across 8 workers — under the race
# detector, since the worker fan-out is exactly what could perturb it. Any
# diff means a nondeterministic impairment draw or a cross-timeline data
# race.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run -race ./cmd/mip6sim -experiment chaos -replicates 1 -seed 7 \
    -workers 1 -trace-out "$tmp/w1" -telemetry-out "$tmp/w1" > "$tmp/w1.out"
go run -race ./cmd/mip6sim -experiment chaos -replicates 1 -seed 7 \
    -workers 8 -trace-out "$tmp/w8" -telemetry-out "$tmp/w8" > "$tmp/w8.out"
test -s "$tmp/w1/chaos.telemetry.csv" # sampling actually ran
diff -r "$tmp/w1" "$tmp/w8"
diff "$tmp/w1.out" "$tmp/w8.out"
# Every matrix cell must report zero invariant violations (column 2 of the
# rendered table).
if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/w1.out"; then
    echo "chaos smoke: workers=1 and workers=8 traces byte-identical, 0 violations"
else
    echo "chaos smoke: invariant violations reported:" >&2
    cat "$tmp/w1.out" >&2
    exit 1
fi

# Chaos under the hard-state engine: the same determinism and
# zero-violation contract must hold with engine=hpimdm (engine-tagged trace
# files, so this never collides with the default smoke above).
go run -race ./cmd/mip6sim -experiment chaos -topo engine=hpimdm -replicates 1 -seed 7 \
    -workers 1 -trace-out "$tmp/h1" -telemetry-out "$tmp/h1" > "$tmp/h1.out"
go run -race ./cmd/mip6sim -experiment chaos -topo engine=hpimdm -replicates 1 -seed 7 \
    -workers 8 -trace-out "$tmp/h8" -telemetry-out "$tmp/h8" > "$tmp/h8.out"
test -s "$tmp/h1/chaos.telemetry.csv"
diff -r "$tmp/h1" "$tmp/h8"
diff "$tmp/h1.out" "$tmp/h8.out"
if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/h1.out"; then
    echo "chaos smoke (hpimdm): workers=1 and workers=8 traces byte-identical, 0 violations"
else
    echo "chaos smoke (hpimdm): invariant violations reported:" >&2
    cat "$tmp/h1.out" >&2
    exit 1
fi

# Chaos under the hierarchical MLD-proxy approach (#5): edge routers A
# and E run the mldproxy engine instead of PIM, and the same determinism
# and zero-violation contract must hold. Trace files carry the
# "proxy-hierarchy-" approach tag, so they never collide with the
# local-membership smokes above.
go run -race ./cmd/mip6sim -experiment chaos -topo approach=proxy -replicates 1 -seed 7 \
    -workers 1 -trace-out "$tmp/p1" -telemetry-out "$tmp/p1" > "$tmp/p1.out"
go run -race ./cmd/mip6sim -experiment chaos -topo approach=proxy -replicates 1 -seed 7 \
    -workers 8 -trace-out "$tmp/p8" -telemetry-out "$tmp/p8" > "$tmp/p8.out"
test -s "$tmp/p1/chaos.telemetry.csv"
test -s "$tmp/p1/chaos-proxy-hierarchy-baseline-seed7.jsonl" # approach tag present
diff -r "$tmp/p1" "$tmp/p8"
diff "$tmp/p1.out" "$tmp/p8.out"
if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/p1.out"; then
    echo "chaos smoke (mldproxy): workers=1 and workers=8 traces byte-identical, 0 violations"
else
    echo "chaos smoke (mldproxy): invariant violations reported:" >&2
    cat "$tmp/p1.out" >&2
    exit 1
fi

# Scale under the proxy approach: the proxy-aware invariant checker
# (check.Converged walking mldproxy trees) must report zero violations on
# every family — including grids, where the depth-2 peel finds no pendant
# routers and the approach degenerates honestly to local membership.
go run -race ./cmd/mip6sim -experiment scale \
    -topo family=fig1+tree+grid,routers=4,mns=8,approach=proxy \
    -replicates 1 -seed 7 -workers 1 -trace-out "$tmp/sp1" \
    -telemetry-out "$tmp/sp1" > "$tmp/sp1.out"
go run -race ./cmd/mip6sim -experiment scale \
    -topo family=fig1+tree+grid,routers=4,mns=8,approach=proxy \
    -replicates 1 -seed 7 -workers 8 -trace-out "$tmp/sp8" \
    -telemetry-out "$tmp/sp8" > "$tmp/sp8.out"
test -s "$tmp/sp1/scale.telemetry.csv"
diff -r "$tmp/sp1" "$tmp/sp8"
diff "$tmp/sp1.out" "$tmp/sp8.out"
if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/sp1.out"; then
    echo "scale smoke (mldproxy): workers=1 and workers=8 traces byte-identical, 0 violations"
else
    echo "scale smoke (mldproxy): invariant violations reported:" >&2
    cat "$tmp/sp1.out" >&2
    exit 1
fi

# Scale determinism smoke: the fig1, tree and grid cells of the
# procedural-topology sweep under BOTH engines, same contract as the chaos
# smoke — fixed seed, byte-identical per-timeline JSONL traces and
# telemetry series at workers 1 vs 8 under the race detector, and a zero
# violations column (field 2 of each table row).
for eng in pimdm hpimdm; do
    go run -race ./cmd/mip6sim -experiment scale \
        -topo family=fig1+tree+grid,routers=4,mns=8,engine=$eng \
        -replicates 1 -seed 7 -workers 1 -trace-out "$tmp/s1-$eng" \
        -telemetry-out "$tmp/s1-$eng" > "$tmp/s1-$eng.out"
    go run -race ./cmd/mip6sim -experiment scale \
        -topo family=fig1+tree+grid,routers=4,mns=8,engine=$eng \
        -replicates 1 -seed 7 -workers 8 -trace-out "$tmp/s8-$eng" \
        -telemetry-out "$tmp/s8-$eng" > "$tmp/s8-$eng.out"
    test -s "$tmp/s1-$eng/scale.telemetry.csv"
    diff -r "$tmp/s1-$eng" "$tmp/s8-$eng"
    diff "$tmp/s1-$eng.out" "$tmp/s8-$eng.out"
    if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/s1-$eng.out"; then
        echo "scale smoke ($eng): workers=1 and workers=8 traces byte-identical, 0 violations"
    else
        echo "scale smoke ($eng): invariant violations reported:" >&2
        cat "$tmp/s1-$eng.out" >&2
        exit 1
    fi
done

# Sharded-kernel determinism smoke: a 4-region ba-r40 cell must emit
# byte-identical traces and telemetry whether its regions run on one
# goroutine or eight — under the race detector, where a cross-region data
# race or a merge-order bug is also a crash — and report zero violations.
# (The in-suite TestShardTraceWorkerInvariance covers both engines at
# shards=2,4; this exercises the same contract end-to-end through the
# CLI flags.)
go run -race ./cmd/mip6sim -experiment scale -topo family=ba,routers=40,mns=80 \
    -shards 4 -core-delay 2ms -replicates 1 -seed 7 -shard-workers 1 \
    -trace-out "$tmp/k1" -telemetry-out "$tmp/k1" > "$tmp/k1.out"
go run -race ./cmd/mip6sim -experiment scale -topo family=ba,routers=40,mns=80 \
    -shards 4 -core-delay 2ms -replicates 1 -seed 7 -shard-workers 8 \
    -trace-out "$tmp/k8" -telemetry-out "$tmp/k8" > "$tmp/k8.out"
test -s "$tmp/k1/scale.telemetry.csv"
diff -r "$tmp/k1" "$tmp/k8"
diff "$tmp/k1.out" "$tmp/k8.out"
if awk 'NR > 2 && NF > 1 && $2 != "0" { bad = 1 } END { exit bad }' "$tmp/k1.out"; then
    echo "shard smoke: shard-workers=1 and =8 traces byte-identical, 0 violations"
else
    echo "shard smoke: invariant violations reported:" >&2
    cat "$tmp/k1.out" >&2
    exit 1
fi

# Live-surface smoke: run one sweep experiment with -http on an ephemeral
# port, scrape /metrics (must be non-empty and Prometheus-shaped, with the
# per-tag series a completed cell contributes), then SIGTERM and require a
# clean exit — startup, the scrape path, and the graceful shutdown path
# (signal cuts the linger, server drains, exit 0). A sweep experiment is
# required: only sweep cells report Progress, which feeds /metrics.
go build -o "$tmp/mip6sim" ./cmd/mip6sim
"$tmp/mip6sim" -experiment scale -topo family=fig1,routers=4,mns=4 \
    -replicates 1 -http 127.0.0.1:0 -http-linger 60s \
    > "$tmp/http.out" 2> "$tmp/http.err" &
httppid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$tmp/http.err")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "http smoke: server never announced its address" >&2
    cat "$tmp/http.err" >&2
    kill "$httppid" 2>/dev/null || true
    exit 1
fi
# Retry until the scrape shows a completed cell's per-tag series: the
# server is up before the first timeline finishes, so an early scrape is
# valid but sparse.
scraped=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt" 2>/dev/null &&
        grep -q '^mip6sim_events_dispatched_total ' "$tmp/metrics.txt" &&
        grep -q '^mip6sim_tag_wall_seconds_total{tag=' "$tmp/metrics.txt"; then
        scraped=1
        break
    fi
    sleep 0.1
done
if [ -z "$scraped" ]; then
    echo "http smoke: /metrics never served the expected series" >&2
    cat "$tmp/metrics.txt" >&2 2>/dev/null || true
    kill "$httppid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$httppid"
if wait "$httppid"; then
    echo "http smoke: /metrics scraped, clean shutdown on SIGTERM"
else
    echo "http smoke: mip6sim exited non-zero after SIGTERM" >&2
    exit 1
fi

# mip6simd smoke: start the sweep daemon, submit the same spec twice (the
# second submission must be served from the cache), warm a chaos checkpoint,
# fork a cell from it, and download the artifact. Then restart the daemon on
# the same cache dir: the spec must still be a cache hit (disk persistence),
# and re-warming the same seed must produce a byte-identical checkpoint
# artifact — the cross-process form of the checkpoint/resume determinism the
# in-suite tests prove in-process.
go build -o "$tmp/mip6simd" ./cmd/mip6simd
spec='{"experiment":"s44","params":{"tquery":[5]},"seed":7,"replicates":1}'
start_daemon() {
    "$tmp/mip6simd" -addr 127.0.0.1:0 -cache-dir "$tmp/simd-cache" \
        2> "$tmp/simd.err" &
    daemonpid=$!
    daddr=""
    for _ in $(seq 1 100); do
        daddr="$(sed -n 's|^mip6simd serving http://\([^/]*\)/.*|\1|p' "$tmp/simd.err")"
        [ -n "$daddr" ] && break
        sleep 0.1
    done
    if [ -z "$daddr" ]; then
        echo "mip6simd smoke: daemon never announced its address" >&2
        cat "$tmp/simd.err" >&2
        kill "$daemonpid" 2>/dev/null || true
        exit 1
    fi
}
stop_daemon() {
    kill -TERM "$daemonpid"
    if ! wait "$daemonpid"; then
        echo "mip6simd smoke: daemon exited non-zero after SIGTERM" >&2
        exit 1
    fi
}
start_daemon
curl -fsS -X POST -d "$spec" "http://$daddr/runs" > "$tmp/simd-run1.json"
runid="$(sed -n 's/.*"id": "\(r[0-9]*\)".*/\1/p' "$tmp/simd-run1.json")"
# Wait for the run to finish, then resubmit: the second submission must be
# served from the cache without running.
for _ in $(seq 1 300); do
    curl -fsS "http://$daddr/runs/$runid" > "$tmp/simd-run1-done.json"
    grep -q '"status": "running"' "$tmp/simd-run1-done.json" || break
    sleep 0.1
done
grep -q '"status": "done"' "$tmp/simd-run1-done.json" || {
    echo "mip6simd smoke: first run never completed:" >&2
    cat "$tmp/simd-run1-done.json" >&2
    exit 1
}
curl -fsS -X POST -d "$spec" "http://$daddr/runs" > "$tmp/simd-run2.json"
grep -q '"cached": true' "$tmp/simd-run2.json" || {
    echo "mip6simd smoke: resubmitted spec was not served from the cache:" >&2
    cat "$tmp/simd-run2.json" >&2
    exit 1
}
curl -fsS -X POST -d '{"seed":9}' "http://$daddr/checkpoints" > "$tmp/simd-cp.json"
cpid="$(sed -n 's/.*"id": "\(cp[0-9]*\)".*/\1/p' "$tmp/simd-cp.json")"
curl -fsS "http://$daddr/checkpoints/$cpid" > "$tmp/simd-cp-a.json"
curl -fsS -X POST -d '{"cells":["baseline"]}' \
    "http://$daddr/checkpoints/$cpid/fork" > "$tmp/simd-fork.json"
if ! grep -q '"outcome"' "$tmp/simd-fork.json" ||
    grep -q '"error"' "$tmp/simd-fork.json" ||
    grep -q '"Violations": \["' "$tmp/simd-fork.json"; then
    echo "mip6simd smoke: forked baseline cell reported violations or failed:" >&2
    cat "$tmp/simd-fork.json" >&2
    exit 1
fi
stop_daemon
start_daemon
curl -fsS -X POST -d "$spec" "http://$daddr/runs" > "$tmp/simd-run3.json"
grep -q '"cached": true' "$tmp/simd-run3.json" || {
    echo "mip6simd smoke: restarted daemon missed the on-disk cache:" >&2
    cat "$tmp/simd-run3.json" >&2
    exit 1
}
curl -fsS -X POST -d '{"seed":9}' "http://$daddr/checkpoints" > "$tmp/simd-cp2.json"
cpid2="$(sed -n 's/.*"id": "\(cp[0-9]*\)".*/\1/p' "$tmp/simd-cp2.json")"
curl -fsS "http://$daddr/checkpoints/$cpid2" > "$tmp/simd-cp-b.json"
diff "$tmp/simd-cp-a.json" "$tmp/simd-cp-b.json" || {
    echo "mip6simd smoke: re-warmed checkpoint artifact differs across processes" >&2
    exit 1
}
stop_daemon
echo "mip6simd smoke: cache hit, disk persistence across restart, fork clean, checkpoint artifact byte-stable"
