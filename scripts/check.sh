#!/bin/sh
# Full pre-merge gate: build, vet, and the test suite under the race
# detector. The race run matters because the experiment registry fans
# replicate timelines across goroutines (internal/exp.Sweep and the root
# package's workers=8 determinism tests exercise it).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
