#!/bin/sh
# Macro-benchmark regression gate: compare the two most recent
# BENCH_PR<n>.json files (the `go test -json` streams `make bench` emits)
# and fail when a macro benchmark — the end-to-end cells in ./bench —
# regressed by more than 20% in ns/op or allocs/op. Micro-benchmarks are
# reported for context but never gate: they are too machine-sensitive at
# this granularity, while the macro cells amortize enough work per op to
# make a 20% swing a real finding. Benchmarks without a counterpart in the
# older file (newly added cells) are skipped.
#
# Usage: scripts/compare_bench.sh [old.json new.json]
set -eu
cd "$(dirname "$0")/.."

MACRO='^(BenchmarkFigure1Macro|BenchmarkScaleTopology|BenchmarkShardedTimeline)'
THRESHOLD=20 # percent

if [ $# -eq 2 ]; then
    old="$1"
    new="$2"
else
    # PR-number order, not mtime: checkouts do not preserve timestamps.
    set -- $(ls BENCH_PR*.json 2>/dev/null | sort -t R -k 2 -n)
    if [ $# -lt 2 ]; then
        echo "compare_bench: need two BENCH_PR*.json files, found $#; nothing to compare"
        exit 0
    fi
    while [ $# -gt 2 ]; do shift; done
    old="$1"
    new="$2"
fi
echo "compare_bench: $old -> $new (macro threshold ${THRESHOLD}%)"

# Flatten one result stream to "name ns_op allocs_op" per benchmark. The
# test2json stream splits one benchmark result line across several Output
# events (name fragment, then counts), so reassemble the output text into
# whole lines before parsing. The -<procs> suffix is stripped so runs from
# machines with different core counts still pair up.
extract() {
    grep -o '"Output":"[^"]*' "$1" |
        sed 's/^"Output":"//' |
        awk '{
            gsub(/\\t/, " ")
            if (sub(/\\n$/, "")) { print line $0; line = "" } else { line = line $0 }
        }' |
        awk '/^Benchmark/ && / ns\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (ns != "") print name, ns, (allocs == "" ? "-" : allocs)
        }'
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
extract "$old" > "$tmp/old"
extract "$new" > "$tmp/new"

awk -v macro="$MACRO" -v thr="$THRESHOLD" '
    NR == FNR { ns[$1] = $2; allocs[$1] = $3; next }
    {
        if (!($1 in ns)) { printf "  new       %-60s (no baseline)\n", $1; next }
        worst = 0
        nsdelta = (ns[$1] > 0) ? ($2 - ns[$1]) * 100 / ns[$1] : 0
        if (nsdelta > worst) worst = nsdelta
        adelta = 0
        if (allocs[$1] != "-" && $3 != "-" && allocs[$1] > 0)
            adelta = ($3 - allocs[$1]) * 100 / allocs[$1]
        if (adelta > worst) worst = adelta
        gate = ($1 ~ macro)
        status = "  ok      "
        if (worst > thr) status = gate ? "  REGRESSED" : "  slower   "
        printf "%s %-60s ns/op %+7.1f%%  allocs/op %+7.1f%%\n", status, $1, nsdelta, adelta
        if (gate && worst > thr) bad = 1
    }
    END { exit bad }
' "$tmp/old" "$tmp/new" || {
    echo "compare_bench: macro benchmark regressed more than ${THRESHOLD}% — see REGRESSED rows above" >&2
    exit 1
}
echo "compare_bench: no macro regressions"
