// Mobile sender: the paper's Figure 4 and §4.3.1. Sender S moves to Link 6
// mid-stream. Sending locally makes PIM-DM treat the care-of address as a
// brand-new source — a full flood builds a second tree while the stale one
// is held for the 210 s data timeout. Reverse-tunneling to the home agent
// keeps the original tree intact at the cost of encapsulation.
//
//	go run ./examples/mobilesender
package main

import (
	"fmt"
	"time"

	"mip6mcast"
)

func main() {
	fmt.Println("Mobile sender: S moves to Link 6 mid-stream (paper Figure 4 / §4.3.1)")
	fmt.Println()

	tun := mip6mcast.RunF4(mip6mcast.DefaultOptions(), true)
	loc := mip6mcast.RunF4(mip6mcast.DefaultOptions(), false)

	fmt.Printf("%-34s %18s %18s\n", "", "reverse tunnel", "local sending")
	row := func(label, a, b string) { fmt.Printf("%-34s %18s %18s\n", label, a, b) }
	row("new (S,G) entries flooded",
		fmt.Sprint(tun.NewTreesBuilt), fmt.Sprint(loc.NewTreesBuilt))
	row("peak simultaneous (S,G) state",
		fmt.Sprint(tun.PeakSGEntries), fmt.Sprint(loc.PeakSGEntries))
	row("tunnel overhead (bytes)",
		fmt.Sprint(tun.TunnelOverheadBytes), fmt.Sprint(loc.TunnelOverheadBytes))
	row("worst receiver gap",
		tun.MaxGapAfterMove.String(), loc.MaxGapAfterMove.String())
	fmt.Println()

	// §4.3.1: a sender hopping across ON-TREE links triggers spurious
	// assert processes during the window before it configures its new
	// care-of address (it keeps sending with a stale source address).
	fmt.Println("Sender hopping across on-tree links (local sending, paper §4.3.1):")
	for _, moves := range []int{1, 2, 4} {
		res := mip6mcast.RunS431(mip6mcast.DefaultOptions(), moves, 45*time.Second)
		fmt.Printf("  %d moves: %5.1f kB re-flooded onto pruned links, %d asserts, "+
			"%d stale+live trees at peak\n",
			res.Moves, float64(res.RefloodBytes)/1000, res.Asserts, res.PeakSG)
	}
}
