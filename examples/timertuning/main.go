// Timer tuning: the paper's §4.4 recommendation quantified. Sweeping the
// MLD Query Interval T_Query shows the tradeoff between join/leave delay of
// mobile receivers and MLD signaling bandwidth — and that "the bandwidth
// cost for this tuning step is small, compared with the bandwidth saving
// due to a lower leave delay".
//
//	go run ./examples/timertuning
package main

import (
	"fmt"

	"mip6mcast"
)

func main() {
	fmt.Println("MLD timer optimization (paper §4.4): T_Query sweep, 3 replicate seeds")
	fmt.Println()

	// Footnote 5: T_Query must not drop below T_RespDel (10 s default);
	// FastMLDOptions clamps accordingly for the 5 s point.
	intervals := []int{5, 10, 20, 30, 60, 125}

	fmt.Println("-- mobile receiver waits for the periodic Query (no unsolicited reports) --")
	points := mip6mcast.RunS44(intervals, false, 3)
	fmt.Print(mip6mcast.S44Table(points))
	fmt.Println()

	fmt.Println("-- with the paper's unsolicited Reports after movement --")
	points = mip6mcast.RunS44(intervals, true, 3)
	fmt.Print(mip6mcast.S44Table(points))
	fmt.Println()

	// The paper's punchline, computed from the two extremes of the first
	// sweep: bytes wasted by the leave delay at T_Query=125 s versus the
	// extra query/report traffic at T_Query=10 s.
	slow := mip6mcast.RunS44([]int{125}, false, 3)[0]
	fast := mip6mcast.RunS44([]int{10}, false, 3)[0]
	saved := float64(slow.WastedBytes-fast.WastedBytes) / 1000
	extraPerHour := (fast.MLDBytesPerHour - slow.MLDBytesPerHour) / 1000
	fmt.Printf("one receiver movement wastes %.1f kB less at T_Query=10s;\n", saved)
	fmt.Printf("the price is %.1f kB/h of extra MLD signaling on the whole network.\n", extraPerHour)
}
