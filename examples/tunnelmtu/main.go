// Tunnel MTU: the implementation issue the paper's conclusion flags for
// the proposed uni-directional tunnels. Encapsulation adds 40 bytes, so a
// datagram that fits every link natively can exceed the MTU once tunneled:
// the home agent must fragment the outer packet, and under loss every
// fragment must survive — amplifying the tunnel receiver's datagram loss
// while local receivers are unaffected.
//
//	go run ./examples/tunnelmtu
package main

import (
	"fmt"

	"mip6mcast"
)

func main() {
	opt := mip6mcast.FastMLDOptions(30)

	fmt.Println("Sweeping datagram payload across the tunnel-MTU boundary (links: 1500 B).")
	fmt.Println("R3 receives via its home agent's tunnel on Link 6; R1 receives locally.")
	fmt.Println()

	points := mip6mcast.RunSMTU(opt, []int{1200, 1412, 1413, 1432}, 0)
	fmt.Print(mip6mcast.SMTUTable(points, 0))
	fmt.Println()
	fmt.Println("One byte across the boundary (outer 1500 -> 1501) doubles the tunnel's")
	fmt.Println("frame count: the home agent fragments, the mobile node reassembles.")
	fmt.Println()

	lossy := mip6mcast.RunSMTU(opt, []int{1412, 1413}, 0.05)
	fmt.Print(mip6mcast.SMTUTable(lossy, 0.05))
	fmt.Println()
	below, above := lossy[0], lossy[1]
	fmt.Printf("With 5%% per-link loss, the same one-byte step costs the tunnel receiver\n")
	fmt.Printf("%.1f%% of its datagrams (%.3f -> %.3f delivery) — fragmentation means every\n",
		100*(below.DeliveryTunnel-above.DeliveryTunnel), below.DeliveryTunnel, above.DeliveryTunnel)
	fmt.Printf("fragment must survive. The local receiver is unaffected by the boundary\n")
	fmt.Printf("(%.3f vs %.3f).\n", below.DeliveryLocal, above.DeliveryLocal)
}
