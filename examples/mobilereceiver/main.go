// Mobile receiver: the paper's Figures 2 and 3 side by side. Receiver 3
// moves away from its home link while a video-like stream is running; the
// example compares joining locally on the foreign link against receiving
// through the home agent's tunnel, with and without the paper's
// recommended optimizations.
//
//	go run ./examples/mobilereceiver
package main

import (
	"fmt"

	"mip6mcast"
)

func main() {
	fmt.Println("Mobile receiver: R3 moves while streaming (paper Figures 2 & 3)")
	fmt.Println()

	// Approach A (Figure 2): local membership on the foreign link.
	// First with the default configuration and the paper's recommended
	// unsolicited Reports...
	res := mip6mcast.RunF2(mip6mcast.DefaultOptions(), true)
	fmt.Printf("local membership, unsolicited reports:\n")
	fmt.Printf("  join delay  %12s   (re-subscription is immediate)\n", res.JoinDelay)
	fmt.Printf("  leave delay %12s   (old link carries garbage until T_MLI)\n", res.LeaveDelay)
	fmt.Printf("  wasted      %9d B on the abandoned home link\n\n", res.WastedBytes)

	// ...then the pathological draft-default behavior: wait for a Query.
	res = mip6mcast.RunF2(mip6mcast.DefaultOptions(), false)
	fmt.Printf("local membership, waiting for the periodic Query (T_Query=125s):\n")
	fmt.Printf("  join delay  %12s   <- the paper calls this \"far too high\"\n\n", res.JoinDelay)

	// The paper's fix: decrease T_Query (here to 10 s).
	res = mip6mcast.RunF2(mip6mcast.FastMLDOptions(10), false)
	fmt.Printf("local membership, tuned T_Query=10s (paper §4.4):\n")
	fmt.Printf("  join delay  %12s\n", res.JoinDelay)
	fmt.Printf("  leave delay %12s\n\n", res.LeaveDelay)

	// Approach B (Figure 3): membership held at the home agent, traffic
	// tunneled — no MLD timer in the path, but suboptimal routing and
	// per-packet tunnel overhead.
	for _, v := range []struct {
		variant mip6mcast.HAVariant
		name    string
	}{
		{mip6mcast.VariantGroupListBU, "Multicast Group List sub-option (paper Fig. 5)"},
		{mip6mcast.VariantTunneledMLD, "MLD Reports through the tunnel"},
	} {
		r3 := mip6mcast.RunF3(mip6mcast.DefaultOptions(), v.variant)
		fmt.Printf("home-agent tunnel via %s:\n", v.name)
		fmt.Printf("  join delay  %12s   (just movement detection + binding update)\n", r3.JoinDelay)
		fmt.Printf("  path length %12.1f router hops (optimal here: %d — R3 stands next to the sender)\n",
			r3.MeanHops, r3.OptimalHops)
		fmt.Printf("  tunnel cost %9d B of encapsulation overhead\n\n", r3.TunnelOverheadBytes)
	}
}
