// Quickstart: build the paper's Figure 1 network, stream multicast from
// Sender S to three receivers, and watch PIM-DM converge to the
// distribution tree (flooding first, then pruning Links 5 and 6).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mip6mcast"
)

func main() {
	// The default options use every RFC/draft default timer: MLD queries
	// every 125 s, PIM-DM (S,G) data timeout 210 s, prune delay 3 s.
	opt := mip6mcast.DefaultOptions()

	// NewRun assembles the network with the "local membership" approach:
	// hosts join via MLD on whatever link they sit on. A CBR source at
	// host S sends one 64-byte datagram every 100 ms to ff0e::101.
	run := mip6mcast.NewRun(opt, mip6mcast.LocalMembership, 100*time.Millisecond, 64)

	// Watch the links the paper says must be pruned.
	l5 := run.WatchLink("L5")
	l6 := run.WatchLink("L6")

	// One minute of virtual time.
	run.F.Run(60 * time.Second)

	fmt.Printf("sent %d datagrams to %s\n", run.CBR.Sent, mip6mcast.Group)
	for _, name := range []string{"R1", "R2", "R3"} {
		p := run.Probes[name]
		fmt.Printf("  %s received %d (max gap %s)\n", name, p.Count(),
			time.Duration(p.MaxGap(0, 1<<62)))
	}

	fmt.Printf("\nflood-and-prune: L5 carried %d data frames (initial flood only), L6 %d\n",
		l5.Frames, l6.Frames)

	fmt.Println("\nrouter D's multicast state:")
	for _, e := range run.F.Routers["D"].Engine.Entries() {
		fmt.Printf("  (S=%s, G=%s): upstream %s, forwarding on %v, pruned on %v\n",
			e.Source, e.Group, e.Upstream, e.ForwardingOn, e.PrunedOn)
	}

	fmt.Println("\nper-link traffic accounting:")
	fmt.Print(run.F.Acct.Summary())
}
