// Home agent redundancy: the extension the paper's conclusion points to
// (its reference [10]). Two home agents on the home link share one service
// address; the active one serves registrations and replicates binding
// state to the standby. When it crashes mid-stream, the standby promotes
// itself and multicast delivery to the roaming receiver continues —
// without any action from the mobile node.
//
//	go run ./examples/haredundancy
package main

import (
	"fmt"
	"time"

	"mip6mcast/internal/core"
	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/mipv6"
	"mip6mcast/internal/mld"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

func main() {
	opt := scenario.DefaultOptions().WithMLD(mld.FastConfig(30 * time.Second))
	// The stationary hosts in this scenario don't need unsolicited
	// re-reports; the roaming receiver's membership travels via its HA.
	opt.HostMLD.ResendOnMove = false
	f := scenario.NewFigure1(opt)

	// Two dedicated HA boxes on Link 4 (R3's home link) behind one service
	// address, plus the usual PIM-capable router D as the multicast router.
	service := ipv6.MustParseAddr("2001:db8:4::5e")
	ccfg := mipv6.DefaultClusterConfig(service)
	var members [2]*mipv6.ClusterMember
	var hsvcs [2]*core.HAService
	for i := 0; i < 2; i++ {
		n := f.Net.NewNode(fmt.Sprintf("ha%d", i), false)
		ifc := n.AddInterface(f.Links["L4"])
		ifc.AddAddr(service)
		ha := mipv6.NewHomeAgent(n, ifc, service, mipv6.DefaultHAConfig())
		members[i] = mipv6.NewClusterMember(ha, ccfg, uint16(200-100*i))
		// The HA boxes are hosts, not PIM routers: they join groups via
		// plain MLD toward router D (the paper's second §4.3.2 variant).
		haMLD := mld.NewHost(n, mld.HostConfig{Config: opt.MLD, ResendOnMove: true})
		hsvcs[i] = core.NewHAService(ha, nil, haMLD, opt.MLD)
	}
	f.Dom.Recompute()

	// R3 uses the cluster's service address as its home agent and receives
	// through the tunnel.
	r3 := f.Hosts["R3"]
	r3.MN.Config.HomeAgent = service
	svc := core.NewService(r3.MN, r3.MLD, core.UniTunnelHAToMN, opt.MLD)
	svc.Join(scenario.Group)

	received := 0
	var lastAt sim.Time
	r3.Node.BindUDP(scenario.WorkloadPort, func(rx netem.RxPacket, u *ipv6.UDP) {
		received++
		lastAt = f.Sched.Now()
	})

	// Static sender on Link 1.
	s := f.Hosts["S"]
	sSvc := core.NewService(s.MN, s.MLD, core.LocalMembership, opt.MLD)
	scenario.NewCBR(f.Sched, 1, 100*time.Millisecond, 64, func(p []byte) {
		sSvc.Send(scenario.Group, p)
	})

	f.Run(15 * time.Second)
	fmt.Printf("t=%s  election done: ha0 active=%v, ha1 active=%v\n",
		f.Sched.Now(), members[0].Active(), members[1].Active())

	f.Move("R3", "L6")
	f.Run(15 * time.Second)
	fmt.Printf("t=%s  R3 roamed to Link 6, receiving via tunnel: %d datagrams\n",
		f.Sched.Now(), received)
	fmt.Printf("         standby holds %d replicated binding(s)\n", members[1].ShadowCount())

	before := received
	crashAt := f.Sched.Now()
	members[0].Fail()
	fmt.Printf("t=%s  *** active home agent ha0 crashes ***\n", crashAt)

	f.Run(60 * time.Second)
	fmt.Printf("t=%s  ha1 active=%v (promotions: %d)\n",
		f.Sched.Now(), members[1].Active(), members[1].Promotions)
	fmt.Printf("         stream resumed: %d more datagrams; outage ≈ %s\n",
		received-before, outage(crashAt, lastAt, received, before))

	members[0].Recover()
	f.Run(30 * time.Second)
	fmt.Printf("t=%s  ha0 recovered and preempted: active=%v; ha1 active=%v\n",
		f.Sched.Now(), members[0].Active(), members[1].Active())
}

// outage estimates the delivery gap around the crash from counters.
func outage(crashAt, lastAt sim.Time, now, before int) time.Duration {
	if now == before {
		return -1 // nothing resumed
	}
	// With a 100 ms CBR, missing datagrams ≈ gap length.
	missed := 600 - (now - before) // 60 s window
	if missed < 0 {
		missed = 0
	}
	_ = crashAt
	_ = lastAt
	return time.Duration(missed) * 100 * time.Millisecond
}
