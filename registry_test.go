package mip6mcast

import (
	"strings"
	"testing"

	"mip6mcast/internal/exp"
)

// Every paper artifact must be registered, in the canonical order.
func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{"f1", "f2", "f3", "f4", "t1", "s44", "s431", "s432", "smg", "sld", "smtu", "chaos", "scale"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("registration order %v, want %v", got, want)
		}
		e, ok := GetExperiment(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		if e.Desc == "" {
			t.Errorf("experiment %q has no description", name)
		}
	}
}

// detParams shrinks each experiment to a fast-but-representative
// configuration so the worker-count determinism check stays affordable.
// Experiments without an entry run with their declared defaults.
var detParams = map[string]exp.Params{
	"s44":   {"tquery": []int{10}},
	"s431":  {"moves": []int{2}},
	"s432":  {"n": []int{2}},
	"smg":   {"groups": []int{4}},
	"sld":   {"depths": []int{2}},
	"smtu":  {"payloads": []int{1413}, "losses": []float64{0.05}},
	"scale": {"families": "tree+grid", "routers": []int{4}},
}

// Identical seeds must yield byte-identical tables regardless of worker
// parallelism: timelines only share read-only inputs, and replicate seeds
// derive deterministically from the master seed.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				opt := DefaultOptions()
				opt.Seed = 7
				res, err := RunExperiment(name, ExpContext{Opt: opt, Replicates: 2, Workers: workers}, detParams[name])
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res.Render()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Errorf("workers=1 and workers=8 tables differ:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
			}
			if !strings.Contains(serial, "\n") {
				t.Errorf("rendered table looks empty: %q", serial)
			}
		})
	}
}

// Replicate 0 must reuse the master seed, so a single-replicate sweep
// reproduces the corresponding one-shot run exactly.
func TestSingleReplicateMatchesOneShot(t *testing.T) {
	opt := DefaultOptions()
	opt.Seed = 3

	res, err := RunExperiment("s432", ExpContext{Opt: opt, Replicates: 1}, exp.Params{"n": []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	direct := measureS432Point(opt, 2)
	viaSweep := res.Stats[0].Raw[0].(S432Point)
	if direct != viaSweep {
		t.Errorf("single-replicate sweep point %+v != one-shot %+v", viaSweep, direct)
	}
	if got := res.Stats[0].Mean("tunnel(B/dgram)"); got != direct.TunnelBytesPerDgram {
		t.Errorf("stats mean %v != one-shot %v", got, direct.TunnelBytesPerDgram)
	}
}

// WithMLD must keep the router and host timer views in lockstep (the
// drift hazard FastMLDOptions used to carry).
func TestFastMLDOptionsKeepsHostAndRouterInSync(t *testing.T) {
	opt := FastMLDOptions(30)
	if opt.MLD != opt.HostMLD.Config {
		t.Errorf("router MLD config %+v != host view %+v", opt.MLD, opt.HostMLD.Config)
	}
	if !opt.HostMLD.ResendOnMove {
		t.Error("FastMLDOptions must preserve the default unsolicited-report behavior")
	}
	if opt.MLD == DefaultOptions().MLD {
		t.Error("FastMLDOptions did not change the query interval")
	}
}
