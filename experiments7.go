package mip6mcast

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mip6mcast/internal/check"
	"mip6mcast/internal/core"
	"mip6mcast/internal/exp"
	"mip6mcast/internal/ipv6"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
)

// SCALE — the procedural-topology sweep. Where the paper's experiments all
// run on its fixed six-link Figure 1, this sweep generates whole families
// of topologies (k-ary trees, meshes, Waxman / Barabási–Albert ISP-like
// graphs) via internal/topo, populates them with N mobile nodes and S
// multicast sources, and drives a seeded Poisson handover schedule.  Each
// cell measures what the paper argues qualitatively, at scale: handover
// join delay (streaming quantiles), leave-delay bandwidth waste on
// abandoned links, per-router (S,G) state high-water, flood/prune
// bandwidth, and home-agent tunnel load — then, for the local-membership
// approach, asserts the internal/check convergence invariants once churn
// quiesces.  All measurement is streaming (Welford + seeded reservoir):
// cells with thousands of mobile nodes keep O(1) measurement state per
// entity, never per-datagram logs.

// Scale timeline: settle, churn, quiesce. Moves are generated inside
// [scaleSettle, scaleSettle+horizon); the run extends scaleQuiesce past
// the churn window so prune holdtimes, MLD listener intervals (FastConfig
// tuning) and graft retries all expire before invariants are checked.
const (
	scaleSettle  = 15 * time.Second
	scaleQuiesce = 60 * time.Second
	// CBR shape per source: 2 datagrams/s of 200 B payload.
	scaleCBRInterval = 500 * time.Millisecond
	scaleCBRSize     = 200
)

// scaleCell is one (family, router count, MN count) point of the grid.
type scaleCell struct {
	family  string
	routers int
	mns     int
}

// scaleConfig is the sweep-wide workload shape.
type scaleConfig struct {
	sources    int
	memberFrac float64
	dwell      time.Duration
	horizon    time.Duration
	approach   Approach
	tracedir   string
}

// ScaleOutcome is one (cell, replicate) timeline's raw result.
type ScaleOutcome struct {
	Family  string
	Routers int
	MNs     int
	// Engine is the multicast engine the timeline ran (pimdm, hpimdm).
	Engine string
	// Seed replays the timeline: mip6sim -experiment scale with this seed
	// and -replicates 1 reruns the exact event sequence.
	Seed       int64
	Moves      int
	Violations []string
	// TracePath is the timeline's JSONL trace ("" when tracing is off).
	TracePath string
	// Join delay distribution over every (member, handover) pair plus the
	// initial joins, in seconds.
	JoinP50, JoinP95, JoinMax float64
	JoinN                     int
	// LeaveMean is the mean time data kept flowing to a LAN after its last
	// member left (the leave-delay waste window), seconds.
	LeaveMean float64
	// WasteBytes counts multicast data bytes delivered on LANs that had no
	// member attached at delivery time (flood + leave-delay waste).
	WasteBytes uint64
	// SGHighWater is the 1 s-sampled maximum of live (S,G) entries summed
	// over all routers.
	SGHighWater int
	// ConvTime is the post-churn convergence time: seconds from the end of
	// the churn window until the first 1 s sample at which the cell's
	// invariants hold, capped at the quiesce window.
	ConvTime float64
	// PIMBytes / DataBytes total the control and data traffic classes over
	// every link; HATunneled sums home-agent encapsulations.
	PIMBytes, DataBytes uint64
	HATunneled          uint64
}

// runScaleOne drives one timeline: generate the graph and workload from
// the cell and seed, build the network, attach services and streaming
// probes, replay the move schedule, quiesce, check, report.
func runScaleOne(opt Options, cell scaleCell, cfg scaleConfig) ScaleOutcome {
	g, err := topo.FromSpec(cell.family, cell.routers, opt.Seed)
	if err != nil {
		panic("scale: " + err.Error())
	}
	// When the build will shard, confine churn to partition regions:
	// PartitionGraph is deterministic on (graph, shards, groups), so this
	// is the exact region assignment scenario.Build computes again.
	var linkRegion []int
	if opt.Shards > 1 {
		if part := topo.PartitionGraph(g, opt.Shards, opt.MobilityGroups); part.N > 1 {
			linkRegion = part.LinkRegion(g)
		}
	}
	w, err := topo.GenWorkload(g, topo.WorkloadSpec{
		MNs:        cell.mns,
		Sources:    cfg.sources,
		MemberFrac: cfg.memberFrac,
		MeanDwell:  cfg.dwell,
		Start:      scaleSettle,
		Horizon:    scaleSettle + cfg.horizon,
		// The workload owns its RNG; xor keeps it decoupled from the
		// graph generator, which consumes the raw seed.
		Seed:       opt.Seed ^ 0x5ca1ab1e,
		LinkRegion: linkRegion,
	})
	if err != nil {
		panic("scale: " + err.Error())
	}

	rec := opt.Obs
	if rec == nil && cfg.tracedir != "" {
		rec = obs.NewRecorder(nil)
		opt.Obs = rec
	}
	opt.HostMLD = core.RecommendedHostMLD(cfg.approach, opt.HostMLD)
	// Under the proxy approach the generated topology peels its own proxy
	// domains (grids and meshes may peel none and degenerate to flat
	// local membership — an honest outcome the result rows then show).
	opt = defaultProxyDepth(opt, cfg.approach)

	var mnHosts, srcHosts []*scenario.Host
	f := scenario.Build(g, opt, func(f *scenario.Network) {
		for i, mn := range w.MNs {
			mnHosts = append(mnHosts,
				f.AddHost(mn.Name, g.Links[mn.Home].Name, 0x9000+uint64(i)+1))
		}
		for s, src := range w.Sources {
			srcHosts = append(srcHosts,
				f.AddHost(src.Name, g.Links[src.Link].Name, 0x5000+uint64(s)+1))
		}
	})

	// Home-agent services (tunneled membership handling and HA-side MLD),
	// in router order so their tickers land deterministically.
	for _, rn := range f.RouterOrder() {
		router := f.Routers[rn]
		for _, ha := range router.HomeAgents() {
			core.NewHAService(ha, router.Engine, nil, opt.MLD)
		}
	}

	// Per-MN services; members join the group before time starts.
	svcs := make([]*core.Service, len(w.MNs))
	for i, h := range mnHosts {
		svcs[i] = core.NewService(h.MN, h.MLD, cfg.approach, opt.MLD)
	}
	for i, mn := range w.MNs {
		if mn.Member {
			svcs[i].Join(Group)
		}
	}

	// Streaming join-delay probes: a member's move (and time 0) arms a
	// pending timestamp; the first workload datagram delivered afterwards
	// closes it into the reservoir. O(1) state per member, any flow counts.
	joinQ := metrics.NewReservoir(512, opt.Seed^0x7e5e4701)
	pending := make([]sim.Time, len(w.MNs))
	// Delay samples accumulate per region — each slice is appended only by
	// its own region's handlers, so parallel windows share nothing — and
	// feed the reservoir in (region, emission) order after the run. On the
	// sequential path that is the exact streaming Add sequence.
	joinSamples := make([][]float64, len(f.Scheds()))
	for i, h := range mnHosts {
		if !w.MNs[i].Member {
			pending[i] = -1
			continue
		}
		pending[i] = 0
		idx := i
		hsched := h.Node.Sched()
		region := hsched.Region()
		h.Node.BindUDP(scenario.WorkloadPort, func(rx netem.RxPacket, u *ipv6.UDP) {
			if _, ok := scenario.ParseBeacon(u.Payload); !ok {
				return
			}
			if at := pending[idx]; at >= 0 {
				joinSamples[region] = append(joinSamples[region],
					time.Duration(hsched.Now()-at).Seconds())
				pending[idx] = -1
			}
		})
	}

	// Ground-truth member census per LAN, fed by the move loop, plus one
	// cheap tap per LAN: data bytes arriving on a memberless LAN are waste,
	// and the last-data timestamp dates each leave-delay episode.
	membersOn := make([]int, len(g.Links))
	lastData := make([]sim.Time, len(g.Links))
	departedAt := make([]sim.Time, len(g.Links))
	curLAN := make([]int, len(w.MNs))
	for i, mn := range w.MNs {
		curLAN[i] = mn.Home
		if mn.Member {
			membersOn[mn.Home]++
		}
	}
	// Waste counts per link: a tap only ever runs in its own link's region,
	// and LANs are never split, so per-link cells are region-private; the
	// census arrays it reads are written only at barriers (the move loop).
	wasteByLink := make([]uint64, len(g.Links))
	var leaveW metrics.Welford
	for li := range g.Links {
		departedAt[li] = -1
		if !g.Links[li].LAN {
			continue
		}
		li := li
		l := f.Links[g.Links[li].Name]
		lsched := l.Sched()
		l.AddTap(func(ev netem.TxEvent) {
			if ev.Pkt.Hdr.Dst != Group {
				return
			}
			lastData[li] = lsched.Now()
			if membersOn[li] == 0 {
				wasteByLink[li] += uint64(len(ev.Frame))
			}
		})
	}
	closeDeparture := func(li int) {
		if departedAt[li] < 0 {
			return
		}
		if d := lastData[li] - departedAt[li]; d > 0 {
			leaveW.Add(time.Duration(d).Seconds())
		} else {
			leaveW.Add(0)
		}
		departedAt[li] = -1
	}

	// One CBR flow per source (sources are stationary, so the send mode is
	// the degenerate at-home case under either approach).
	for s, h := range srcHosts {
		svc := core.NewService(h.MN, h.MLD, cfg.approach, opt.MLD)
		// The flow's ticker lives on the source's own region scheduler.
		scenario.NewCBR(h.Node.Sched(), uint16(s+1), scaleCBRInterval, scaleCBRSize,
			func(payload []byte) { svc.Send(Group, payload) })
	}

	// 1 s sampler for the (S,G) state high-water mark across all routers —
	// barrier-driven under shards, where reading every region is safe.
	sgHi := 0
	f.SamplePeriodic(time.Second, func() {
		total := 0
		for _, rn := range f.RouterOrder() {
			total += f.Routers[rn].Engine.EntryCount()
		}
		if total > sgHi {
			sgHi = total
		}
	})

	// Replay the churn schedule: run to each move's instant, apply it, and
	// update the ground-truth census the taps and checks read.
	for _, mv := range w.Moves {
		f.RunUntil(sim.Time(mv.At))
		now := f.Sched.Now()
		from, to := curLAN[mv.MN], mv.To
		if w.MNs[mv.MN].Member {
			membersOn[from]--
			if membersOn[from] == 0 {
				departedAt[from] = now
			}
			if membersOn[to] == 0 {
				closeDeparture(to)
			}
			membersOn[to]++
			pending[mv.MN] = now
		}
		curLAN[mv.MN] = to
		f.Move(w.MNs[mv.MN].Name, g.Links[to].Name)
	}
	churnEnd := sim.Time(scaleSettle + cfg.horizon)
	f.RunUntil(churnEnd)

	members := map[string]bool{}
	for _, mn := range w.MNs {
		if mn.Member {
			members[mn.Name] = true
		}
	}
	// sampleOK is the convergence probe used to time post-churn recovery;
	// it inspects router state read-only between event batches, so the
	// sampled quiesce emits the same trace as an unsampled one. The probe
	// is linear in routers+interfaces, so the sampling interval grows with
	// topology size (1 s up to 32 routers) to keep measurement overhead off
	// the macro benchmarks; conv(s) resolution coarsens accordingly.
	sampleOK := func() bool {
		if cfg.approach.Receive != core.ReceiveHomeTunnel {
			e := check.Expectation{Source: srcHosts[0].MN.HomeAddress, Group: Group, Members: members}
			return len(check.Converged(f, e)) == 0
		}
		return len(check.GraftsResolved(f)) == 0
	}
	step := time.Second * time.Duration(1+cell.routers/32)
	conv := scaleQuiesce.Seconds()
	for t := step; t <= scaleQuiesce; t += step {
		f.RunUntil(churnEnd + sim.Time(t))
		if conv == scaleQuiesce.Seconds() && sampleOK() {
			conv = t.Seconds()
		}
	}
	f.RunUntil(sim.Time(scaleSettle + cfg.horizon + scaleQuiesce))
	for li := range g.Links {
		closeDeparture(li)
	}
	var wasteBytes uint64
	for _, b := range wasteByLink {
		wasteBytes += b
	}
	for _, rs := range joinSamples {
		for _, v := range rs {
			joinQ.Add(v)
		}
	}

	// Convergence invariants. The full Converged contract (link demand ==
	// local MLD membership, proxy-tree consistency included) models local
	// and proxy receiving; under the tunnel approach away members receive
	// via their home agent instead, so only the approach-independent
	// graft liveness is asserted there.
	var vs []check.Violation
	if cfg.approach.Receive != core.ReceiveHomeTunnel {
		for si, h := range srcHosts {
			e := check.Expectation{Source: h.MN.HomeAddress, Group: Group, Members: members}
			if si == 0 {
				vs = append(vs, check.Converged(f, e)...)
			} else {
				vs = append(vs, check.ForwardingSet(f, e)...)
			}
		}
	} else {
		vs = append(vs, check.GraftsResolved(f)...)
	}
	if rec != nil {
		retry := opt.PIM.GraftRetry
		if retry == 0 {
			retry = DefaultPIMConfig().GraftRetry
		}
		vs = append(vs, check.GraftLiveness(rec.Events(), retry, 2*time.Second, f.Sched.Now())...)
	}

	out := ScaleOutcome{
		Family: cell.family, Routers: cell.routers, MNs: cell.mns,
		Engine: opt.EngineName(),
		Seed:   opt.Seed, Moves: len(w.Moves),
		JoinP50: joinQ.Quantile(0.5), JoinP95: joinQ.Quantile(0.95),
		JoinMax: joinQ.Max(), JoinN: joinQ.N(),
		LeaveMean:   leaveW.Mean(),
		WasteBytes:  wasteBytes,
		SGHighWater: sgHi,
		ConvTime:    conv,
	}
	for _, v := range vs {
		out.Violations = append(out.Violations, v.String())
	}
	for _, lc := range f.Acct.Snapshot() {
		out.PIMBytes += lc.Bytes[metrics.ClassPIM]
		out.DataBytes += lc.Bytes[metrics.ClassData]
	}
	for _, rn := range f.RouterOrder() {
		for _, ha := range f.Routers[rn].HomeAgents() {
			out.HATunneled += ha.PacketsTunneled + ha.MulticastTunneled
		}
	}
	if cfg.tracedir != "" && rec != nil {
		out.TracePath = writeScaleTrace(cfg.tracedir, out.Engine, cell, opt.Seed, rec)
	}
	return out
}

// writeScaleTrace exports one timeline's JSONL trace. The name embeds the
// cell and seed, so reruns at any worker count produce the same file set
// with identical bytes — the determinism artifact the CI smoke diffs.
// Non-default engines get an engine tag so comparison runs never collide
// with the default file set.
func writeScaleTrace(dir, eng string, cell scaleCell, seed int64, rec *obs.Recorder) string {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	name := fmt.Sprintf("scale-%s-r%d-mn%d-seed%d.jsonl",
		cell.family, cell.routers, cell.mns, seed)
	if eng != "pimdm" {
		name = fmt.Sprintf("scale-%s-%s-r%d-mn%d-seed%d.jsonl",
			eng, cell.family, cell.routers, cell.mns, seed)
	}
	path := filepath.Join(dir, name)
	w, err := os.Create(path)
	if err != nil {
		return ""
	}
	// First line is replay metadata; the event stream follows.
	fmt.Fprintf(w, "{\"meta\":{\"experiment\":\"scale\",\"engine\":%q,\"cell\":%q,\"seed\":%d}}\n",
		eng, fmt.Sprintf("%s-r%d-mn%d", cell.family, cell.routers, cell.mns), seed)
	if err := rec.WriteJSONL(w); err != nil {
		w.Close()
		return ""
	}
	if err := w.Close(); err != nil {
		return ""
	}
	return path
}

// ParseFamilies splits a '+'-separated topology family list ("tree+grid")
// and validates every entry against the generator registry. The separator
// is '+' because ',' already separates sweep parameters on the CLI.
func ParseFamilies(s string) ([]string, error) {
	var out []string
	for _, fam := range strings.Split(s, "+") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		if _, err := topo.FromSpec(fam, 1, 1); err != nil {
			return nil, err
		}
		out = append(out, fam)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topo: empty family list %q (want e.g. %q)", s, "tree+grid")
	}
	return out, nil
}

func runExpScale(ctx exp.Context, p exp.Params) exp.Result {
	ctx.Opt = applyEngine(chaosTune(ctx.Opt), p)
	families, err := ParseFamilies(p.Str("families"))
	if err != nil {
		panic("scale: " + err.Error())
	}
	approach := applyApproach(p)
	cfg := scaleConfig{
		sources:    p.Int("sources"),
		memberFrac: p.Float("members"),
		dwell:      secs(p.Int("dwell")),
		horizon:    secs(p.Int("horizon")),
		approach:   approach,
		tracedir:   p.Str("tracedir"),
	}
	if cfg.sources < 1 {
		cfg.sources = 1
	}
	mnsOverride := p.Int("mns")
	mnfrac := p.Float("mnfrac")

	var cells []scaleCell
	var points []string
	for _, fam := range families {
		for _, r := range p.Ints("routers") {
			mns := mnsOverride
			if mns <= 0 {
				mns = int(mnfrac*float64(r) + 0.5)
				if mns < 1 {
					mns = 1
				}
			}
			cells = append(cells, scaleCell{family: fam, routers: r, mns: mns})
			// Single-token labels (no spaces): CI's awk smoke reads the
			// violations column by field position.
			points = append(points, fmt.Sprintf("%s-r%d-mn%d", fam, r, mns))
		}
	}
	spec := exp.SweepSpec{
		Points: points,
		Columns: []string{"violations", "conv(s)", "join-p50(s)", "join-p95(s)", "leave(s)",
			"waste(KB)", "sg-hi", "pim(KB)", "data(MB)", "ha-tun"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			res := runScaleOne(opt, cells[pt], cfg)
			return map[string]float64{
				"violations":  float64(len(res.Violations)),
				"conv(s)":     res.ConvTime,
				"join-p50(s)": res.JoinP50,
				"join-p95(s)": res.JoinP95,
				"leave(s)":    res.LeaveMean,
				"waste(KB)":   float64(res.WasteBytes) / 1024,
				"sg-hi":       float64(res.SGHighWater),
				"pim(KB)":     float64(res.PIMBytes) / 1024,
				"data(MB)":    float64(res.DataBytes) / (1024 * 1024),
				"ha-tun":      float64(res.HATunneled),
			}, res
		},
	}
	return exp.SweepResult("SCALE: procedural topologies under handover churn",
		spec.Columns, exp.Sweep(ctx, spec))
}

// ScaleViolations flattens every violating outcome of a scale result, each
// entry carrying its cell, seed and trace path for replay.
func ScaleViolations(res exp.Result) []ScaleOutcome {
	var out []ScaleOutcome
	for _, pt := range res.Stats {
		for _, raw := range pt.Raw {
			if o, ok := raw.(ScaleOutcome); ok && len(o.Violations) > 0 {
				out = append(out, o)
			}
		}
	}
	return out
}
