package mip6mcast

import (
	"fmt"
	"strings"

	"mip6mcast/internal/exp"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/mld"
	"mip6mcast/internal/scenario"
)

// This file registers every paper artifact as an internal/exp experiment.
// The registration order is the canonical "run all" order; the legacy
// Run* functions are thin wrappers over these entries.

func init() {
	exp.Register(&exp.Experiment{
		Name: "f1",
		Desc: "Figure 1: initial distribution tree (flood-and-prune convergence)",
		Run:  runExpF1,
	})
	exp.Register(&exp.Experiment{
		Name: "f2",
		Desc: "Figure 2: mobile receiver with local membership (join/leave delays)",
		Run:  runExpF2,
	})
	exp.Register(&exp.Experiment{
		Name: "f3",
		Desc: "Figure 3: mobile receiver via home-agent tunnel (both §4.3.2 variants)",
		Run:  runExpF3,
	})
	exp.Register(&exp.Experiment{
		Name: "f4",
		Desc: "Figure 4: mobile sender, reverse tunnel vs local sending",
		Run:  runExpF4,
	})
	exp.Register(&exp.Experiment{
		Name: "t1",
		Desc: "Table 1 / §4.3: every registered approach under the movement scenario",
		Run:  runExpT1,
	})
	exp.Register(&exp.Experiment{
		Name:  "s44",
		Desc:  "§4.4: MLD Query Interval sweep (delay vs signaling tradeoff)",
		Sweep: true,
		Params: []exp.Param{
			{Name: "tquery", Desc: "MLD query intervals to sweep (s)", Kind: exp.IntList,
				Default: []int{5, 10, 20, 30, 60, 125}},
			{Name: "unsolicited", Desc: "mobile receivers re-report after moving", Kind: exp.Bool,
				Default: true},
		},
		Run: runExpS44,
	})
	exp.Register(&exp.Experiment{
		Name:  "s431",
		Desc:  "§4.3.1: mobile-sender flood/assert overhead vs movement count",
		Sweep: true,
		Params: []exp.Param{
			{Name: "moves", Desc: "sender movement counts to sweep", Kind: exp.IntList,
				Default: []int{1, 2, 4, 8}},
			{Name: "dwell", Desc: "dwell time per foreign link (s)", Kind: exp.Int, Default: 45},
		},
		Run: runExpS431,
	})
	exp.Register(&exp.Experiment{
		Name:  "s432",
		Desc:  "§4.3.2: tunnel convergence, N co-located receivers on one foreign link",
		Sweep: true,
		Params: []exp.Param{
			{Name: "n", Desc: "co-located mobile receiver counts", Kind: exp.IntList,
				Default: []int{1, 2, 4, 8}},
		},
		Run: runExpS432,
	})
	exp.Register(&exp.Experiment{
		Name:  "smg",
		Desc:  "extension: multi-group scaling of the Group List mechanism",
		Sweep: true,
		Params: []exp.Param{
			{Name: "groups", Desc: "group subscription counts", Kind: exp.IntList,
				Default: []int{1, 4, 15, 16, 40}},
			paramApproach("uni-tunnel-ha-to-mn"),
			paramTQuery(),
		},
		Run: runExpSMG,
	})
	exp.Register(&exp.Experiment{
		Name:  "sld",
		Desc:  "extension: receive modes vs roaming depth (line topology)",
		Sweep: true,
		Params: []exp.Param{
			{Name: "depths", Desc: "roaming depths (router hops from home)", Kind: exp.IntList,
				Default: []int{1, 2, 4, 8}},
			paramTQuery(),
		},
		Run: runExpSLD,
	})
	exp.Register(&exp.Experiment{
		Name:  "smtu",
		Desc:  "extension: tunnel MTU boundary (fragmentation and loss amplification)",
		Sweep: true,
		Params: []exp.Param{
			{Name: "payloads", Desc: "datagram payload sizes (B)", Kind: exp.IntList,
				Default: []int{1200, 1400, 1412, 1413, 1432}},
			{Name: "losses", Desc: "per-link loss rates to sweep", Kind: exp.FloatList,
				Default: []float64{0, 0.05}},
			paramTQuery(),
		},
		Run: runExpSMTU,
	})
	exp.Register(&exp.Experiment{
		Name:  "chaos",
		Desc:  "chaos: fault-injection matrix with convergence invariant checks",
		Sweep: true,
		Params: []exp.Param{
			paramApproach("local-membership"),
			paramEngine(),
			{Name: "tracedir", Desc: "write each timeline's JSONL trace under this directory for seed replay; empty disables",
				Kind: exp.String, Default: ""},
		},
		Run: runExpChaos,
	})
	exp.Register(&exp.Experiment{
		Name:  "scale",
		Desc:  "scale: procedural topologies (internal/topo) under handover churn",
		Sweep: true,
		Params: []exp.Param{
			{Name: "families", Desc: "'+'-separated topology families (tree, grid, waxman, ba, fig1)",
				Kind: exp.String, Default: "tree+grid+waxman"},
			{Name: "routers", Desc: "router counts to sweep per family", Kind: exp.IntList,
				Default: []int{4, 16}},
			{Name: "mnfrac", Desc: "mobile nodes per router (when mns is 0)", Kind: exp.Float,
				Default: 2.0},
			{Name: "mns", Desc: "explicit mobile-node count; 0 derives from mnfrac", Kind: exp.Int,
				Default: 0},
			{Name: "sources", Desc: "multicast source count", Kind: exp.Int, Default: 2},
			{Name: "members", Desc: "fraction of mobile nodes subscribed to the group", Kind: exp.Float,
				Default: 0.5},
			{Name: "dwell", Desc: "mean dwell time between handovers (s)", Kind: exp.Int, Default: 20},
			{Name: "horizon", Desc: "churn window length (s)", Kind: exp.Int, Default: 60},
			paramApproach("local-membership"),
			paramEngine(),
			{Name: "tracedir", Desc: "write each timeline's JSONL trace under this directory for seed replay; empty disables",
				Kind: exp.String, Default: ""},
		},
		Run: runExpScale,
	})
}

// paramEngine is the multicast-engine selector shared by the comparison
// sweeps. The default keeps every existing golden trace byte-identical.
func paramEngine() exp.Param {
	return exp.Param{
		Name: "engine", Desc: "multicast engine: " + strings.Join(scenario.EngineNames(), " or "),
		Kind: exp.String, Default: "pimdm",
	}
}

// paramApproach is the receive-approach selector shared by the sweeps
// that can run any registered approach. The description lists the
// registry's canonical names, so `mip6sim -list` always shows what a
// build actually accepts (RegisterApproach additions included).
func paramApproach(def string) exp.Param {
	return exp.Param{
		Name: "approach", Desc: "approach: " + strings.Join(ApproachNames(), ", ") + " (or alias local/tunnel/proxy)",
		Kind: exp.String, Default: def,
	}
}

// applyApproach resolves the approach parameter against the core
// registry; unknown names panic with the registered set.
func applyApproach(p exp.Params) Approach {
	name := p.Str("approach")
	a, ok := ApproachByName(name)
	if !ok {
		panic(fmt.Sprintf("unknown approach %q (registered: %v)", name, ApproachNames()))
	}
	return a
}

// applyEngine validates the engine parameter against the scenario
// registry and selects it in the build options.
func applyEngine(opt Options, p exp.Params) Options {
	name := p.Str("engine")
	found := false
	for _, n := range scenario.EngineNames() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("unknown multicast engine %q (registered: %v)", name, scenario.EngineNames()))
	}
	opt.Engine = name
	return opt
}

// paramTQuery is the shared MLD-tuning knob of the extension studies,
// which need fast timers to finish in a bounded horizon. 0 inherits the
// base options untouched.
func paramTQuery() exp.Param {
	return exp.Param{
		Name: "tquery", Desc: "MLD query interval override (s); 0 inherits base options",
		Kind: exp.Int, Default: 30,
	}
}

// applyTQuery retunes MLD (router and host in lockstep) when the tquery
// parameter asks for it.
func applyTQuery(opt Options, p exp.Params) Options {
	if tq := p.Int("tquery"); tq > 0 {
		return opt.WithMLD(mld.FastConfig(secs(tq)))
	}
	return opt
}

// mustRunExp backs the legacy Run* wrappers: registry entries are
// compiled in and wrapper-supplied params match their schemas, so any
// error here is a programming bug.
func mustRunExp(name string, ctx exp.Context, p exp.Params) exp.Result {
	res, err := exp.Run(name, ctx, p)
	if err != nil {
		panic("mip6mcast: " + err.Error())
	}
	return res
}

func runExpF1(ctx exp.Context, p exp.Params) exp.Result {
	// Column 0 is the paper's flat build; column 1 rebuilds the same tree
	// with the edge routers peeled into MLD-proxy domains (approach #5) —
	// same delivery, aggregated state instead of per-proxy PIM state.
	approaches := []Approach{LocalMembership, ProxyHierarchy}
	cols := []string{"flat", "proxy"}
	var out [2]F1Result
	exp.ForEach(ctx, len(approaches), func(opt scenario.Options, i int) {
		out[i] = measureF1(opt, approaches[i])
	})
	val := func(get func(F1Result) float64) map[string]float64 {
		return map[string]float64{"flat": get(out[0]), "proxy": get(out[1])}
	}
	rows := []metrics.Row{
		{Label: "sent", Values: val(func(r F1Result) float64 { return float64(r.Sent) })},
	}
	for _, name := range []string{"R1", "R2", "R3"} {
		name := name
		rows = append(rows, metrics.Row{
			Label:  "delivered@" + name,
			Values: val(func(r F1Result) float64 { return float64(r.Delivered[name]) }),
		})
	}
	for _, l := range scenario.LinkNames() {
		l := l
		rows = append(rows, metrics.Row{
			Label:  "data@" + l + "(B)",
			Values: val(func(r F1Result) float64 { return float64(r.DataBytesPerLink[l]) }),
		})
	}
	rows = append(rows,
		metrics.Row{Label: "flood-frames@L5", Values: val(func(r F1Result) float64 { return float64(r.FloodFramesL5) })},
		metrics.Row{Label: "frames@L6", Values: val(func(r F1Result) float64 { return float64(r.FramesL6) })},
		metrics.Row{Label: "sg-entries@D", Values: val(func(r F1Result) float64 { return float64(len(r.TreeAtD)) })},
	)
	return exp.Result{
		Title:    "F1: initial distribution tree (paper Figure 1; flat vs proxy build)",
		Columns:  cols,
		Rows:     rows,
		Artifact: out,
	}
}

func runExpF2(ctx exp.Context, p exp.Params) exp.Result {
	// Rows 0/1 are the paper's report-policy contrast under local
	// membership; row 2 repeats the unsolicited-report move under the
	// proxy hierarchy, where L4→L6 is an anchor-local handover.
	var out [3]F2Result
	exp.ForEach(ctx, 3, func(opt scenario.Options, i int) {
		approach := LocalMembership
		if i == 2 {
			approach = ProxyHierarchy
		}
		out[i] = measureF2(opt, i != 1, approach)
	})
	labels := []string{"unsolicited-reports", "wait-for-query", "proxy-hierarchy"}
	cols := []string{"join(s)", "leave(s)", "waste(B)", "delivered-after"}
	rows := make([]metrics.Row, 0, len(out))
	for i, res := range out {
		rows = append(rows, metrics.Row{
			Label: labels[i],
			Values: map[string]float64{
				"join(s)":         res.JoinDelay.Seconds(),
				"leave(s)":        res.LeaveDelay.Seconds(),
				"waste(B)":        float64(res.WastedBytes),
				"delivered-after": float64(res.DeliveredAfterMove),
			},
		})
	}
	return exp.Result{
		Title:    "F2: mobile receiver, local membership (paper Figure 2)",
		Columns:  cols,
		Rows:     rows,
		Artifact: out,
	}
}

func runExpF3(ctx exp.Context, p exp.Params) exp.Result {
	variants := []HAVariant{VariantGroupListBU, VariantTunneledMLD}
	// The third row contrasts both tunnel variants with the proxy
	// hierarchy: R3's move lands below proxy A (domain B), so it rejoins
	// locally through the proxy tree — no tunnel, near-optimal hops.
	labels := []string{"group-list-BU", "tunneled-MLD", "proxy-hierarchy"}
	results := make([]F3Result, len(variants)+1)
	exp.ForEach(ctx, len(results), func(opt scenario.Options, i int) {
		if i < len(variants) {
			results[i] = measureF3(opt, variants[i])
		} else {
			results[i] = measureF3Run(opt, ProxyHierarchy)
		}
	})
	cols := []string{"join(s)", "hops", "optimal", "tun-ovh(B)", "ha-tunneled"}
	rows := make([]metrics.Row, 0, len(results))
	artifact := make(map[HAVariant]F3Result, len(variants))
	for i, res := range results {
		if i < len(variants) {
			artifact[variants[i]] = res
		}
		rows = append(rows, metrics.Row{
			Label: labels[i],
			Values: map[string]float64{
				"join(s)":     res.JoinDelay.Seconds(),
				"hops":        res.MeanHops,
				"optimal":     float64(res.OptimalHops),
				"tun-ovh(B)":  float64(res.TunnelOverheadBytes),
				"ha-tunneled": float64(res.HATunneled),
			},
		})
	}
	return exp.Result{
		Title:    "F3: mobile receiver via home-agent tunnel (paper Figure 3)",
		Columns:  cols,
		Rows:     rows,
		Artifact: artifact,
	}
}

func runExpF4(ctx exp.Context, p exp.Params) exp.Result {
	// Rows 0/1 are the paper's send-mode contrast; row 2 moves the sender
	// under the proxy hierarchy, where L6 sits below proxy E and the new
	// source is up-forwarded into anchor D's existing domain.
	var out [3]F4Result
	exp.ForEach(ctx, 3, func(opt scenario.Options, i int) {
		switch i {
		case 2:
			out[i] = measureF4Run(opt, ProxyHierarchy)
		default:
			out[i] = measureF4(opt, i == 0)
		}
	})
	labels := []string{"reverse-tunnel", "local-send", "proxy-hierarchy"}
	cols := []string{"gap(s)", "newtrees", "peakSG", "asserts", "tun(B)", "recv-R1", "recv-R2", "recv-R3"}
	rows := make([]metrics.Row, 0, len(out))
	for i, res := range out {
		vals := map[string]float64{
			"gap(s)":   res.MaxGapAfterMove.Seconds(),
			"newtrees": float64(res.NewTreesBuilt),
			"peakSG":   float64(res.PeakSGEntries),
			"asserts":  float64(res.AssertsSent),
			"tun(B)":   float64(res.TunnelOverheadBytes),
		}
		for _, name := range []string{"R1", "R2", "R3"} {
			vals["recv-"+name] = float64(res.DeliveredAfterMove[name])
		}
		rows = append(rows, metrics.Row{Label: labels[i], Values: vals})
	}
	return exp.Result{
		Title:    "F4: mobile sender (paper Figure 4 vs local sending)",
		Columns:  cols,
		Rows:     rows,
		Artifact: out,
	}
}

func runExpT1(ctx exp.Context, p exp.Params) exp.Result {
	// Every registered approach rides the identical movement scenario:
	// the paper's four plus any added via core.RegisterApproach (the
	// proxy hierarchy being the first).
	approaches := Approaches()
	rows := make([]T1Row, len(approaches))
	exp.ForEach(ctx, len(approaches), func(opt scenario.Options, i int) {
		rows[i] = runT1One(opt, approaches[i])
	})
	return exp.Result{
		Title:    "T1: registered approaches, Fig.1 movement scenario",
		Columns:  t1Columns(),
		Rows:     t1Rows(rows),
		Artifact: rows,
	}
}

func runExpS44(ctx exp.Context, p exp.Params) exp.Result {
	qs := p.Ints("tquery")
	unsolicited := p.Bool("unsolicited")
	points := make([]string, len(qs))
	for i, q := range qs {
		points[i] = fmt.Sprintf("T_Query=%3ds unsol=%v", q, unsolicited)
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"join(s)", "leave(s)", "waste(B)", "mld(B/h)"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			opt = opt.WithMLD(mld.FastConfig(secs(qs[pt])))
			opt.HostMLD.ResendOnMove = unsolicited
			join, leave, waste, mldPerHour := measureS44One(opt)
			return map[string]float64{
				"join(s)":  join.Seconds(),
				"leave(s)": leave.Seconds(),
				"waste(B)": float64(waste),
				"mld(B/h)": mldPerHour,
			}, nil
		},
	}
	return exp.SweepResult("S44: MLD timer optimization (paper §4.4)", spec.Columns, exp.Sweep(ctx, spec))
}

func runExpS431(ctx exp.Context, p exp.Params) exp.Result {
	moves := p.Ints("moves")
	dwell := secs(p.Int("dwell"))
	points := make([]string, len(moves))
	for i, m := range moves {
		points[i] = fmt.Sprintf("moves=%d", m)
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"reflood(B)", "asserts", "peakSG", "newtrees"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			res := measureS431(opt, moves[pt], dwell)
			return map[string]float64{
				"reflood(B)": float64(res.RefloodBytes),
				"asserts":    float64(res.Asserts),
				"peakSG":     float64(res.PeakSG),
				"newtrees":   float64(res.NewTrees),
			}, res
		},
	}
	return exp.SweepResult("S431: mobile-sender flood/assert overhead (paper §4.3.1)",
		spec.Columns, exp.Sweep(ctx, spec))
}

func runExpS432(ctx exp.Context, p exp.Params) exp.Result {
	ns := p.Ints("n")
	points := make([]string, len(ns))
	for i, n := range ns {
		points[i] = fmt.Sprintf("N=%d", n)
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"local(B/dgram)", "tunnel(B/dgram)"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			res := measureS432Point(opt, ns[pt])
			return map[string]float64{
				"local(B/dgram)":  res.LocalBytesPerDgram,
				"tunnel(B/dgram)": res.TunnelBytesPerDgram,
			}, res
		},
	}
	return exp.SweepResult("S432: foreign-link bytes per datagram (paper §4.3.2)",
		spec.Columns, exp.Sweep(ctx, spec))
}

func runExpSMG(ctx exp.Context, p exp.Params) exp.Result {
	ctx.Opt = applyTQuery(ctx.Opt, p)
	approach := applyApproach(p)
	counts := p.Ints("groups")
	points := make([]string, len(counts))
	for i, g := range counts {
		points[i] = fmt.Sprintf("groups=%d", g)
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"bu(B)", "subopts", "ha(dgm/s)", "join-p50(s)", "join-max(s)", "delivered"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			res := runSMGOne(opt, counts[pt], approach)
			return map[string]float64{
				"bu(B)":       float64(res.MaxBUBytes),
				"subopts":     float64(res.SubOptions),
				"ha(dgm/s)":   res.HATunneledPerSec,
				"join-p50(s)": res.JoinDelays.Quantile(0.5),
				"join-max(s)": res.JoinDelays.Max(),
				"delivered":   float64(res.Delivered),
			}, res
		},
	}
	return exp.SweepResult("SMG: multi-group scaling of the Group List mechanism",
		spec.Columns, exp.Sweep(ctx, spec))
}

func runExpSLD(ctx exp.Context, p exp.Params) exp.Result {
	ctx.Opt = applyTQuery(ctx.Opt, p)
	depths := p.Ints("depths")
	// Points alternate receive modes per depth: local, then tunnel.
	points := make([]string, 0, 2*len(depths))
	for _, d := range depths {
		points = append(points,
			fmt.Sprintf("depth=%-2d local ", d),
			fmt.Sprintf("depth=%-2d tunnel", d))
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"join(ms)", "hops", "optimal", "tun(B/dgram)"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			res := runSLDOne(opt, depths[pt/2], pt%2 == 1)
			return map[string]float64{
				"join(ms)":     float64(res.JoinDelay.Milliseconds()),
				"hops":         res.MeanHops,
				"optimal":      float64(res.OptimalHops),
				"tun(B/dgram)": res.TunnelBytesPerDgram,
			}, res
		},
	}
	return exp.SweepResult("SLD: receive modes vs roaming depth (line topology)",
		spec.Columns, exp.Sweep(ctx, spec))
}

func runExpSMTU(ctx exp.Context, p exp.Params) exp.Result {
	ctx.Opt = applyTQuery(ctx.Opt, p)
	payloads := p.Ints("payloads")
	losses := p.Floats("losses")
	points := make([]string, 0, len(payloads)*len(losses))
	for _, loss := range losses {
		for _, pl := range payloads {
			points = append(points, fmt.Sprintf("payload=%d loss=%.0f%%", pl, loss*100))
		}
	}
	spec := exp.SweepSpec{
		Points:  points,
		Columns: []string{"inner(B)", "outer(B)", "frag", "frames/dgram", "deliv-local", "deliv-tunnel"},
		Run: func(opt scenario.Options, pt int) (map[string]float64, any) {
			payload := payloads[pt%len(payloads)]
			loss := losses[pt/len(payloads)]
			res := runSMTUOne(opt, payload, loss)
			frag := 0.0
			if res.Fragmented {
				frag = 1
			}
			return map[string]float64{
				"inner(B)":     float64(res.InnerFrame),
				"outer(B)":     float64(res.OuterFrame),
				"frag":         frag,
				"frames/dgram": res.TunnelFramesPerDgram,
				"deliv-local":  res.DeliveryLocal,
				"deliv-tunnel": res.DeliveryTunnel,
			}, res
		},
	}
	return exp.SweepResult("SMTU: tunnel MTU boundary (MTU=1500)",
		spec.Columns, exp.Sweep(ctx, spec))
}
