package mip6mcast

import (
	"strings"
	"testing"
	"time"

	"mip6mcast/internal/exp"
	"mip6mcast/internal/topo"
)

func smallScaleConfig() scaleConfig {
	return scaleConfig{
		sources:    2,
		memberFrac: 0.5,
		dwell:      20 * time.Second,
		horizon:    60 * time.Second,
		approach:   LocalMembership,
	}
}

// Every topology family must satisfy the convergence invariants once the
// churn window quiesces — including the cyclic families (grid, waxman,
// ba), which exercise the non-RPF point-to-point prune path the paper's
// tree-shaped Figure 1 never reaches.
func TestScaleSmallCellsConverge(t *testing.T) {
	for _, family := range topo.Families() {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			opt := chaosTune(DefaultOptions())
			opt.Seed = 1
			res := runScaleOne(opt, scaleCell{family: family, routers: 6, mns: 8}, smallScaleConfig())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.JoinN == 0 {
				t.Error("no join delays were measured")
			}
			if res.DataBytes == 0 {
				t.Error("no data bytes were accounted")
			}
		})
	}
}

// The tunnel approach must run the same machinery (home-agent services,
// binding updates, tunnel encapsulation) over generated topologies, and
// away members must pull traffic through their home agents.
func TestScaleTunnelApproachTunnels(t *testing.T) {
	opt := chaosTune(DefaultOptions())
	opt.Seed = 1
	cfg := smallScaleConfig()
	cfg.approach = BidirectionalTunnel
	res := runScaleOne(opt, scaleCell{family: "tree", routers: 6, mns: 8}, cfg)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Moves > 0 && res.HATunneled == 0 {
		t.Error("mobile members moved but no home agent tunneled anything")
	}
}

// One timeline, two seeds: the graph, workload, and measurements of a
// stochastic family must all derive from the master seed.
func TestScaleSeedChangesOutcome(t *testing.T) {
	cfg := smallScaleConfig()
	run := func(seed int64) ScaleOutcome {
		opt := chaosTune(DefaultOptions())
		opt.Seed = seed
		return runScaleOne(opt, scaleCell{family: "waxman", routers: 8, mns: 8}, cfg)
	}
	a, b := run(1), run(2)
	if a.Moves == b.Moves && a.PIMBytes == b.PIMBytes && a.DataBytes == b.DataBytes {
		t.Errorf("seeds 1 and 2 produced identical outcomes: %+v", a)
	}
	a2 := run(1)
	if a.Moves != a2.Moves || a.PIMBytes != a2.PIMBytes || a.DataBytes != a2.DataBytes ||
		a.JoinP50 != a2.JoinP50 || a.WasteBytes != a2.WasteBytes || a.SGHighWater != a2.SGHighWater {
		t.Errorf("seed 1 reruns differ:\n%+v\n%+v", a, a2)
	}
}

// ParseFamilies must accept '+'-separated lists and reject unknown
// family names with a helpful error.
func TestParseFamilies(t *testing.T) {
	got, err := ParseFamilies("tree+grid")
	if err != nil || len(got) != 2 || got[0] != "tree" || got[1] != "grid" {
		t.Errorf("ParseFamilies(tree+grid) = %v, %v", got, err)
	}
	if _, err := ParseFamilies("hypercube"); err == nil ||
		!strings.Contains(err.Error(), "hypercube") {
		t.Errorf("ParseFamilies(hypercube) error = %v, want unknown-family error", err)
	}
	if _, err := ParseFamilies(""); err == nil {
		t.Error("ParseFamilies(\"\") did not error")
	}
}

// The registered experiment must resolve its default parameters and carry
// the violations column first, mirroring the chaos table convention.
func TestScaleExperimentSchema(t *testing.T) {
	e, ok := GetExperiment("scale")
	if !ok {
		t.Fatal("scale experiment not registered")
	}
	if !e.Sweep {
		t.Error("scale must be a sweep experiment")
	}
	p, err := e.ResolveParams(exp.Params{})
	if err != nil {
		t.Fatalf("defaults do not resolve: %v", err)
	}
	if fams, err := ParseFamilies(p.Str("families")); err != nil || len(fams) == 0 {
		t.Errorf("default families %q invalid: %v", p.Str("families"), err)
	}
}
