package mip6mcast

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mip6mcast/internal/check"
	"mip6mcast/internal/core"
	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
	"mip6mcast/internal/topo"
)

// shardSmokeTrace runs the ba-r40-mn80 scale smoke cell — cross-region
// CBR traffic, region-confined handover churn, the full invariant check —
// and returns the merged JSONL trace plus the outcome. The cell is the
// determinism probe for the sharded kernel: every byte of the trace is a
// function of (seed, shard count) and must never depend on worker count.
func shardSmokeTrace(t *testing.T, engine string, shards, workers int) ([]byte, ScaleOutcome) {
	t.Helper()
	opt := chaosTune(DefaultOptions())
	opt.Seed = 1
	opt.Engine = engine
	opt.Shards = shards
	opt.ShardWorkers = workers
	opt.CoreLinkDelay = 2 * time.Millisecond
	rec := obs.NewRecorder(nil)
	opt.Obs = rec
	out := runScaleOne(opt, scaleCell{family: "ba", routers: 40, mns: 80}, scaleConfig{
		sources:    1,
		memberFrac: 0.5,
		dwell:      20 * time.Second,
		horizon:    30 * time.Second,
		approach:   LocalMembership,
	})
	rec.MergeShards()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorded nothing")
	}
	return buf.Bytes(), out
}

func diffTraces(t *testing.T, label string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Fatalf("%s: traces diverge at line %d:\n a: %s\n b: %s",
				label, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s: trace lengths diverge: %d vs %d lines", label, len(al), len(bl))
}

// TestShardTraceWorkerInvariance is the core determinism contract of the
// parallel kernel: for a fixed seed and shard count, the merged trace is
// byte-identical whether regions execute on one worker or eight, for both
// engines, and the cell reports zero invariant violations. check.sh runs
// this under the race detector, where any cross-region data race or
// merge-order bug is also a crash.
func TestShardTraceWorkerInvariance(t *testing.T) {
	for _, engine := range []string{"pimdm", "hpimdm"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			for _, shards := range []int{2, 4} {
				w1, out1 := shardSmokeTrace(t, engine, shards, 1)
				w8, out8 := shardSmokeTrace(t, engine, shards, 8)
				diffTraces(t, fmt.Sprintf("shards=%d workers 1 vs 8", shards), w1, w8)
				if len(out1.Violations) != 0 || len(out8.Violations) != 0 {
					t.Fatalf("shards=%d: violations w1=%d w8=%d (first: %v)",
						shards, len(out1.Violations), len(out8.Violations),
						append(out1.Violations, out8.Violations...)[0])
				}
			}
		})
	}
}

// TestShardOneMatchesSequential pins the compatibility edge of the
// contract: -shards 1 must reproduce the plain sequential timeline
// byte-for-byte (worker count irrelevant), for both engines.
func TestShardOneMatchesSequential(t *testing.T) {
	for _, engine := range []string{"pimdm", "hpimdm"} {
		seq, outSeq := shardSmokeTrace(t, engine, 0, 0)
		one, outOne := shardSmokeTrace(t, engine, 1, 8)
		diffTraces(t, engine+": shards=1 vs sequential", seq, one)
		if len(outSeq.Violations) != 0 || len(outOne.Violations) != 0 {
			t.Fatalf("%s: violations seq=%d one=%d", engine,
				len(outSeq.Violations), len(outOne.Violations))
		}
	}
}

// TestFigure1GoldenShards re-runs the pinned golden-trace scenario with
// -shards set. Figure 1 is all multi-access LANs, so the partitioner must
// collapse it to a single region at any shard count and the build must
// fall back to the exact sequential path — the golden bytes are the
// proof that turning sharding on cannot perturb a topology it cannot cut.
func TestFigure1GoldenShards(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fig1_golden.jsonl"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	for _, shards := range []int{1, 4} {
		opt := FastMLDOptions(10)
		opt.Seed = 42
		opt.Shards = shards
		opt.ShardWorkers = 8
		rec := obs.NewRecorder(nil)
		opt.Obs = rec
		f := buildHandover(opt, BidirectionalTunnel, 15*time.Second)
		if f.Kern != nil {
			t.Fatalf("shards=%d: fig1 built a kernel despite having no cuttable link", shards)
		}
		f.Run(40 * time.Second)
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		diffTraces(t, fmt.Sprintf("shards=%d vs golden", shards), want, buf.Bytes())
	}
}

// TestShardCrashInsideSyncWindow schedules a router crash at a time that
// is not aligned to any sync-window boundary, on a sharded build where the
// crashed router sits in a different region than the multicast source.
// The kernel must force a barrier at the crash instant (quiescing only
// that region's timeline mid-window), the crash/restart instants must land
// in the merged trace at exactly the requested times, and the post-restart
// network must converge with zero invariant violations — the checker reads
// merged post-quiesce state, never a mid-window snapshot.
func TestShardCrashInsideSyncWindow(t *testing.T) {
	g, err := topo.FromSpec("tree", 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := chaosTune(DefaultOptions())
	opt.Seed = 3
	opt.Shards = 2
	opt.CoreLinkDelay = 2 * time.Millisecond
	rec := obs.NewRecorder(nil)
	opt.Obs = rec
	lans := g.LANs()
	var src, mem *scenario.Host
	f := scenario.Build(g, opt, func(f *scenario.Network) {
		src = f.AddHost("SRC", g.Links[lans[0]].Name, 0x5001)
		mem = f.AddHost("MEM", g.Links[lans[len(lans)-1]].Name, 0x9001)
	})
	if f.Kern == nil || f.Part == nil || f.Part.N < 2 {
		t.Fatal("tree-15 at shards=2 did not produce a multi-region build")
	}
	srcRegion := f.Links[g.Links[lans[0]].Name].Sched().Region()

	// A router in the other region than the source, but not the member's
	// access router: crashing it perturbs that region's timeline without
	// permanently severing the member.
	memAR := ""
	for _, ifc := range f.Links[g.Links[lans[len(lans)-1]].Name].Ifaces {
		if r, ok := f.Routers[ifc.Node.Name]; ok && r != nil {
			memAR = ifc.Node.Name
		}
	}
	victim := ""
	for _, rn := range f.RouterOrder() {
		if rn != memAR && f.Routers[rn].Node.Sched().Region() != srcRegion {
			victim = rn
			break
		}
	}
	if victim == "" {
		t.Fatal("no crashable router outside the source region")
	}

	svc := core.NewService(src.MN, src.MLD, LocalMembership, opt.MLD)
	msvc := core.NewService(mem.MN, mem.MLD, LocalMembership, opt.MLD)
	scenario.NewCBR(src.Node.Sched(), 1, 500*time.Millisecond, 64,
		func(p []byte) { svc.Send(Group, p) })
	msvc.Join(Group)

	// 1.5 ms past a whole second: with a 2 ms lookahead no window barrier
	// naturally lands there, so the action must split a window in two.
	crashAt := 20*time.Second + 1500*time.Microsecond
	restartAt := 40*time.Second + 500*time.Microsecond
	f.At(sim.Time(crashAt), func() { f.CrashRouter(victim) })
	f.At(sim.Time(restartAt), func() { f.RestartRouter(victim) })
	f.Run(150 * time.Second)

	rec.MergeShards()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for what, at := range map[string]time.Duration{"crash": crashAt, "restart": restartAt} {
		needle := fmt.Sprintf(`"t_ns":%d,`, at.Nanoseconds())
		name := fmt.Sprintf(`"name":%q`, what)
		found := false
		for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
			if bytes.Contains(line, []byte(needle)) && bytes.Contains(line, []byte(name)) &&
				bytes.Contains(line, []byte(`"node":`+fmt.Sprintf("%q", victim))) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s instant for %s not recorded at t=%v", what, victim, at)
		}
	}

	e := check.Expectation{
		Source:  src.MN.HomeAddress,
		Group:   Group,
		Members: map[string]bool{"MEM": true},
	}
	if v := check.Converged(f, e); len(v) != 0 {
		t.Fatalf("post-restart network did not converge: %d violations, first: %s",
			len(v), v[0])
	}
}
