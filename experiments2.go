package mip6mcast

import (
	"fmt"
	"time"

	"mip6mcast/internal/exp"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

// T1Row is one approach's measured criteria (the quantified version of the
// paper's §4.3 comparison across its Table 1).
type T1Row struct {
	Approach Approach
	// JoinDelayR3 after the mobile receiver's move.
	JoinDelayR3 time.Duration
	// SenderGap: worst delivery interruption at the static receivers
	// around the mobile sender's move.
	SenderGap time.Duration
	// DataBytes and TunnelBytes over the run (all links).
	DataBytes, TunnelBytes uint64
	// ControlBytes = MLD + PIM + Mobile IPv6 signaling.
	ControlBytes uint64
	// HALoad = packets intercepted + encapsulated + decapsulated at home
	// agents.
	HALoad uint64
	// PeakSG is the maximum simultaneous (S,G) entries over all routers.
	PeakSG int
	// MeanHopsR3 after its move, against OptimalHopsR3 (unicast shortest
	// path from the sender's link to R3's link).
	MeanHopsR3    float64
	OptimalHopsR3 int
	// LossR3: datagrams R3 missed over the whole run.
	LossR3 int
}

// RunT1 runs the paper's movement scenario under each of the four
// approaches: Receiver 3 moves Link4→Link6 at t=60 s, Sender S moves
// Link1→Link6 at t=180 s, horizon 420 s. Identical workload and seed per
// approach.
//
// Compatibility shim over the "t1" registry entry (which runs the four
// approaches' timelines in parallel).
func RunT1(opt Options) []T1Row {
	return mustRunExp("t1", exp.Context{Opt: opt}, nil).Artifact.([]T1Row)
}

func runT1One(opt Options, approach Approach) T1Row {
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	peak := 0
	sim.NewTicker(r.F.Sched, time.Second, 0, func() {
		if n := r.F.TotalSGEntries(); n > peak {
			peak = n
		}
	})
	r.F.Run(60 * time.Second)
	r3move := r.MoveHost("R3", "L6")
	r.F.RunUntil(sim.Time(180 * time.Second))
	smove := r.MoveHost("S", "L6")
	r.F.RunUntil(sim.Time(420 * time.Second))

	row := T1Row{Approach: approach, PeakSG: peak, OptimalHopsR3: r.OptimalRouterHops("L6", "L6")}
	if d, ok := r.JoinDelay("R3", r3move); ok {
		row.JoinDelayR3 = d
	}
	for _, name := range []string{"R1", "R2"} {
		g := time.Duration(r.Probes[name].MaxGap(smove-sim.Time(5*time.Second), smove+sim.Time(90*time.Second)))
		if g > row.SenderGap {
			row.SenderGap = g
		}
	}
	row.DataBytes = r.F.Acct.TotalBytes(metrics.ClassData)
	row.TunnelBytes = r.F.Acct.TotalBytes(metrics.ClassTunnel)
	row.ControlBytes = r.ControlBytes()
	row.HALoad = r.HALoad()
	// After both moves, S is on L6 and R3 is on L6.
	row.MeanHopsR3 = r.Probes["R3"].MeanHops(smove+sim.Time(60*time.Second), sim.Time(1<<62))
	row.LossR3 = int(r.CBR.Sent) - r.Probes["R3"].Count()
	return row
}

// T1Table renders RunT1 results in the paper's style.
func T1Table(rows []T1Row) string {
	return metrics.Table("T1: four approaches, Fig.1 movement scenario", t1Columns(), t1Rows(rows))
}

func t1Columns() []string {
	return []string{"join(s)", "sndgap(s)", "data(kB)", "tun(kB)", "ctrl(kB)", "haload", "peakSG", "hopsR3", "optR3", "lossR3"}
}

func t1Rows(rows []T1Row) []metrics.Row {
	out := make([]metrics.Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, metrics.Row{
			Label: r.Approach.String(),
			Values: map[string]float64{
				"join(s)":   r.JoinDelayR3.Seconds(),
				"sndgap(s)": r.SenderGap.Seconds(),
				"data(kB)":  float64(r.DataBytes) / 1000,
				"tun(kB)":   float64(r.TunnelBytes) / 1000,
				"ctrl(kB)":  float64(r.ControlBytes) / 1000,
				"haload":    float64(r.HALoad),
				"peakSG":    float64(r.PeakSG),
				"hopsR3":    r.MeanHopsR3,
				"optR3":     float64(r.OptimalHopsR3),
				"lossR3":    float64(r.LossR3),
			},
		})
	}
	return out
}

// S44Point is one sample of the §4.4 timer-optimization tradeoff.
type S44Point struct {
	QueryInterval time.Duration
	Unsolicited   bool
	// JoinDelay (mean over replicates) of the mobile receiver after moving
	// to a memberless link.
	JoinDelay time.Duration
	// LeaveDelay until the old link stopped carrying data.
	LeaveDelay time.Duration
	// WastedBytes on the old link after the move.
	WastedBytes uint64
	// MLDBytesPerHour of Query/Report/Done traffic across the network.
	MLDBytesPerHour float64
}

// RunS44 sweeps the MLD Query Interval (paper §4.4): small T_Query buys
// short join/leave delays at a small signaling cost. Replicates (derived
// seeds) run in parallel and are reduced to means.
//
// Compatibility shim over the "s44" registry entry; the returned points
// carry the replicate means (full stddev/CI statistics are available via
// the registry Result).
func RunS44(queryIntervalsSec []int, unsolicited bool, replicates int) []S44Point {
	res := mustRunExp("s44",
		exp.Context{Opt: DefaultOptions(), Replicates: replicates},
		exp.Params{"tquery": queryIntervalsSec, "unsolicited": unsolicited})
	points := make([]S44Point, len(res.Stats))
	for i, pt := range res.Stats {
		points[i] = S44Point{
			QueryInterval:   secs(queryIntervalsSec[i]),
			Unsolicited:     unsolicited,
			JoinDelay:       time.Duration(pt.Mean("join(s)") * float64(time.Second)),
			LeaveDelay:      time.Duration(pt.Mean("leave(s)") * float64(time.Second)),
			WastedBytes:     uint64(pt.Mean("waste(B)") + 0.5),
			MLDBytesPerHour: pt.Mean("mld(B/h)"),
		}
	}
	return points
}

// measureS44One runs one §4.4 timeline: opt's MLD timers are already set
// for the swept point; the receiver moves to a memberless link at t=40 s.
func measureS44One(opt Options) (join, leave time.Duration, waste uint64, mldPerHour float64) {
	r := NewRun(opt, LocalMembership, 100*time.Millisecond, 64)
	l4 := r.WatchLink("L4")
	r.F.Run(40 * time.Second)
	moveAt := r.MoveHost("R3", "L6")
	horizon := opt.MLD.ListenerInterval() + opt.MLD.QueryInterval + 60*time.Second
	r.F.Run(horizon)

	if d, ok := r.JoinDelay("R3", moveAt); ok {
		join = d
	}
	if l4.Last > moveAt {
		leave = l4.Last.Sub(moveAt)
	}
	waste = l4.BytesAfter(moveAt)
	elapsed := r.F.Sched.Now().Seconds()
	mldPerHour = float64(r.F.Acct.TotalBytes(metrics.ClassMLD)) * 3600 / elapsed
	return join, leave, waste, mldPerHour
}

// S44Table renders the sweep.
func S44Table(points []S44Point) string {
	cols := []string{"join(s)", "leave(s)", "waste(kB)", "mld(kB/h)"}
	rows := make([]metrics.Row, 0, len(points))
	for _, p := range points {
		label := fmt.Sprintf("T_Query=%3ds unsol=%v", int(p.QueryInterval.Seconds()), p.Unsolicited)
		rows = append(rows, metrics.Row{
			Label: label,
			Values: map[string]float64{
				"join(s)":   p.JoinDelay.Seconds(),
				"leave(s)":  p.LeaveDelay.Seconds(),
				"waste(kB)": float64(p.WastedBytes) / 1000,
				"mld(kB/h)": p.MLDBytesPerHour / 1000,
			},
		})
	}
	return metrics.Table("S44: MLD timer optimization (paper §4.4)", cols, rows)
}

// S431Result measures the cost of a locally-sending mobile sender.
type S431Result struct {
	Moves int
	// RefloodBytes: data bytes on links outside the receiver tree
	// (L5+L6 while no member is there) — the per-move flood waste.
	RefloodBytes uint64
	// Asserts triggered by stale source addressing.
	Asserts uint64
	// PeakSG entries (stale trees held for the 210 s data timeout).
	PeakSG int
	// NewTrees built (floods started) after the first.
	NewTrees uint64
}

// RunS431 moves the sender repeatedly across on-tree links while it keeps
// sending locally (approach A), reproducing §4.3.1's overhead analysis:
// every move builds a new source-rooted tree, floods, and the stale-source
// window triggers assert processes.
//
// Compatibility shim over the "s431" registry entry at a single sweep
// point.
func RunS431(opt Options, moves int, dwell time.Duration) S431Result {
	res := mustRunExp("s431", exp.Context{Opt: opt},
		exp.Params{"moves": []int{moves}, "dwell": int(dwell / time.Second)})
	return res.Stats[0].Raw[0].(S431Result)
}

func measureS431(opt Options, moves int, dwell time.Duration) S431Result {
	// Movement detection takes as long as router advertisements are apart;
	// the paper's assert analysis assumes a non-negligible window in which
	// the sender still uses its stale source address. Model the era's RA
	// cadence (seconds) and a denser packet stream.
	opt.NDP.AdvInterval = 3 * time.Second
	opt.NDP.AdvJitter = time.Second
	opt.NDP.SolicitedDelayMax = 500 * time.Millisecond
	r := NewRun(opt, LocalMembership, 20*time.Millisecond, 256)
	l5 := r.WatchLink("L5")
	l6 := r.WatchLink("L6")
	peak := 0
	sim.NewTicker(r.F.Sched, time.Second, 0, func() {
		if n := r.F.TotalSGEntries(); n > peak {
			peak = n
		}
	})
	r.F.Run(30 * time.Second)
	base := r.F.PIMStats()

	// Cycle the sender across links that carry the tree (the paper: moving
	// to Link 2, 3 or 4 makes forwarding routers believe there is a loop).
	cycle := []string{"L4", "L2", "L3", "L1"}
	for i := 0; i < moves; i++ {
		r.MoveHost("S", cycle[i%len(cycle)])
		r.F.Run(dwell)
	}
	after := r.F.PIMStats()

	return S431Result{
		Moves:        moves,
		RefloodBytes: l5.Bytes + l6.Bytes,
		Asserts:      after.AssertsSent - base.AssertsSent,
		PeakSG:       peak,
		NewTrees:     after.FloodsStarted - base.FloodsStarted,
	}
}

// S432Point compares per-datagram foreign-link bytes for N co-located
// mobile receivers.
type S432Point struct {
	N int
	// ForeignLinkBytesPerDatagram on Link 6: 1 multicast copy under local
	// membership vs N unicast tunnel copies under the bi-directional
	// tunnel (the paper: "the same multicast datagrams will be sent via
	// unicast to each group member on the foreign link").
	LocalBytesPerDgram  float64
	TunnelBytesPerDgram float64
}

// RunS432 reproduces the §4.3.2 tunnel-convergence observation for each N.
//
// Compatibility shim over the "s432" registry entry.
func RunS432(opt Options, ns []int) []S432Point {
	res := mustRunExp("s432", exp.Context{Opt: opt}, exp.Params{"n": ns})
	out := make([]S432Point, len(res.Stats))
	for i, pt := range res.Stats {
		out[i] = pt.Raw[0].(S432Point)
	}
	return out
}

func measureS432Point(opt Options, n int) S432Point {
	return S432Point{
		N:                   n,
		LocalBytesPerDgram:  runS432One(opt, LocalMembership, n),
		TunnelBytesPerDgram: runS432One(opt, BidirectionalTunnel, n),
	}
}

func runS432One(opt Options, approach Approach, n int) float64 {
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	f := r.F
	// n extra mobile receivers, all home on L4, all moving to L6.
	extras := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("M%d", i)
		svc := r.AddMobileReceiver(name, "L4", uint64(0x3000+i))
		svc.Join(scenario.Group)
		extras = append(extras, name)
	}
	l6 := r.WatchLink("L6")
	f.Run(30 * time.Second)
	for i := range extras {
		f.Move(extras[i], "L6")
	}
	f.Run(30 * time.Second) // let registrations/grafts settle
	before := l6.Bytes
	beforeSent := r.CBR.Sent
	f.Run(120 * time.Second)
	dgrams := r.CBR.Sent - beforeSent
	if dgrams == 0 {
		return 0
	}
	return float64(l6.Bytes-before) / float64(dgrams)
}
