GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race run exercises the sweep engine's parallel fan-out: the root
# package's determinism tests run every registered experiment with
# workers=8, and internal/exp's tests drive Sweep directly.
race:
	$(GO) test -race ./...

check: build vet race
