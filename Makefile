GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race run exercises the sweep engine's parallel fan-out: the root
# package's determinism tests run every registered experiment with
# workers=8, and internal/exp's tests drive Sweep directly.
race:
	$(GO) test -race ./...

check: build vet race

# Benchmark evidence for the observability layer: kernel dispatch cost with
# instrumentation off/on, the nil-recorder hook cost (must be 0 allocs),
# and full-stack forwarding with and without a recorder attached. Output is
# the `go test -json` event stream.
bench:
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkStep|BenchmarkNilRecorderHooks|BenchmarkObsOverhead|BenchmarkSteadyStateForwarding' \
		./internal/sim ./internal/obs . > BENCH_PR2.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_PR2.json | sed 's/"Output":"//;s/\\n$$//' || true
