GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race run exercises the sweep engine's parallel fan-out: the root
# package's determinism tests run every registered experiment with
# workers=8, and internal/exp's tests drive Sweep directly.
race:
	$(GO) test -race ./...

check: build vet race

# Benchmark evidence for the data-plane fast path: the Figure 1 macro run
# (events/sec, B/op, allocs/op end to end), the PR5 procedural-topology
# macro cells (100-router grid, 500-router Barabási–Albert with 2000
# mobile nodes), link delivery and multicast fan-out micro-benches,
# scheduler dispatch cost, the PR2 observability benches, and the PR4
# impairment-hook cost (the /off case must match BenchmarkMulticastFanout's
# allocs/op exactly — the hooks are free when Impair == nil), the PR6
# engine head-to-head (one scale cell per registered multicast engine, with
# PIM control KB and convergence time as reported metrics), and the PR7
# telemetry cells: BenchmarkTelemetryOverhead prices the sampler set on the
# Figure 1 macro run (/off must match BenchmarkFigure1Macro) and
# BenchmarkHandleOps prices the metric handles themselves (the nil-registry
# case must stay 0 allocs/op), and the PR9 checkpoint cells:
# BenchmarkRampAmortization prices the chaos warm-prefix fork paths (cold vs
# live-fork vs replay-fork — the live-fork delta is the ramp the daemon's
# checkpoint pool amortizes away). Output is the `go test -json` event
# stream; baseline numbers are documented in EXPERIMENTS.md.
# scripts/compare_bench.sh diffs the two most recent BENCH_PR*.json and
# fails on macro regressions.
# The macro cells get a time-based -benchtime so the multi-second runs
# (ba-r500 is ~7 s/op) average several iterations per result line: a
# single iteration swings ±20% with machine state, which is exactly the
# compare_bench.sh gate threshold.
bench:
	$(GO) test -json -run '^$$' -benchmem -benchtime 15s \
		-bench 'BenchmarkFigure1Macro|BenchmarkScaleTopology|BenchmarkShardedTimeline|BenchmarkEngineComparison|BenchmarkTelemetryOverhead' \
		./bench > BENCH_PR10.json
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkLinkDelivery|BenchmarkMulticastFanout|BenchmarkImpairmentFanout|BenchmarkFragmentationPath|BenchmarkStep|BenchmarkNilRecorderHooks|BenchmarkObsOverhead|BenchmarkSteadyStateForwarding|BenchmarkHandleOps|BenchmarkRampAmortization|BenchmarkApproachComparison' \
		./internal/netem ./internal/sim ./internal/obs ./internal/telemetry ./bench . >> BENCH_PR10.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_PR10.json | sed 's/"Output":"//;s/\\n$$//' || true
