package mip6mcast

// Engine conformance: every engine registered with internal/scenario must
// deliver the same observable multicast service on the Figure 1 network —
// membership changes converge, grafts after handover resolve, crashed
// routers rebuild state, and convergence survives bursty loss. The table
// runs identically against each registered engine, so adding an engine to
// the registry automatically puts it under this contract.

import (
	"testing"
	"time"

	"mip6mcast/internal/check"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/obs"
	"mip6mcast/internal/scenario"
)

// conformanceRun builds the harness for one engine with chaos-style fast
// timers, a recorder for liveness checks, and a fixed seed.
func conformanceRun(eng string) (*Run, *obs.Recorder) {
	opt := chaosTune(FastMLDOptions(10))
	opt.Engine = eng
	opt.Seed = 7
	rec := obs.NewRecorder(nil)
	opt.Obs = rec
	return NewRun(opt, LocalMembership, 200*time.Millisecond, 64), rec
}

// expectConverged asserts the full internal/check convergence contract for
// the given member set.
func expectConverged(t *testing.T, f *scenario.Network, members map[string]bool) {
	t.Helper()
	e := check.Expectation{
		Source:  f.Hosts["S"].MN.HomeAddress,
		Group:   Group,
		Members: members,
	}
	for _, v := range check.Converged(f, e) {
		t.Errorf("violation: %s", v)
	}
}

func allMembers() map[string]bool {
	return map[string]bool{"R1": true, "R2": true, "R3": true}
}

func TestEngineConformance(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, r *Run, rec *obs.Recorder)
	}{
		{name: "join-leave", run: func(t *testing.T, r *Run, rec *obs.Recorder) {
			f := r.F
			f.Run(30 * time.Second)
			expectConverged(t, f, allMembers())
			r.Services["R3"].Leave(Group)
			f.Run(30 * time.Second)
			expectConverged(t, f, map[string]bool{"R1": true, "R2": true})
			r.Services["R3"].Join(Group)
			f.Run(30 * time.Second)
			expectConverged(t, f, allMembers())
		}},
		{name: "move-graft", run: func(t *testing.T, r *Run, rec *obs.Recorder) {
			f := r.F
			f.Run(15 * time.Second)
			r.MoveHost("R3", "L5") // away: the tree must graft toward L5
			f.Run(30 * time.Second)
			expectConverged(t, f, allMembers())
			r.MoveHost("R3", "L4") // home again
			f.Run(30 * time.Second)
			expectConverged(t, f, allMembers())
		}},
		{name: "crash-restart", run: func(t *testing.T, r *Run, rec *obs.Recorder) {
			f := r.F
			f.Run(15 * time.Second)
			r.CrashRouter("D") // R3's only router: all its state is lost
			f.Run(8 * time.Second)
			r.RestartRouter("D")
			f.Run(60 * time.Second)
			expectConverged(t, f, allMembers())
		}},
		{name: "ge-loss-churn", run: func(t *testing.T, r *Run, rec *obs.Recorder) {
			f := r.F
			f.Run(15 * time.Second)
			imp := &netem.Impairment{PGB: 0.05, PBG: 0.25, GoodLoss: 0.01, BadLoss: 0.5}
			for _, l := range f.Links {
				l.Impair = imp
			}
			r.Services["R3"].Leave(Group)
			f.Run(8 * time.Second)
			r.Services["R3"].Join(Group)
			f.Run(7 * time.Second)
			r.MoveHost("R3", "L5")
			f.Run(15 * time.Second)
			r.MoveHost("R3", "L4")
			f.Run(10 * time.Second)
			for _, l := range f.Links {
				l.Impair = nil
			}
			f.Run(75 * time.Second)
			expectConverged(t, f, allMembers())
			// Graft/sync liveness: under loss every graft (pimdm) or
			// interest declaration (hpimdm) must still resolve via
			// retransmission — no entry may stay graft-pending forever.
			retry := f.Opt.PIM.GraftRetry
			for _, v := range check.GraftLiveness(rec.Events(), retry, 2*time.Second, f.Sched.Now()) {
				t.Errorf("liveness violation: %s", v)
			}
		}},
	}

	engines := scenario.EngineNames()
	if len(engines) < 2 {
		t.Fatalf("engine registry has %v, want at least pimdm and hpimdm", engines)
	}
	for _, eng := range engines {
		t.Run(eng, func(t *testing.T) {
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					r, rec := conformanceRun(eng)
					tc.run(t, r, rec)
					if got := r.F.Routers["A"].Engine.Name(); got != eng {
						t.Errorf("built engine %q, want %q", got, eng)
					}
				})
			}
		})
	}
}

// The sweeps run every engine through the same cells; their outcome
// structs must say which engine produced each row.
func TestEngineThreadedThroughOutcomes(t *testing.T) {
	opt := chaosTune(FastMLDOptions(10))
	opt.Engine = "hpimdm"
	opt.Seed = 3
	out := runChaosOne(opt, LocalMembership, chaosCell{name: "baseline"}, "")
	if out.Engine != "hpimdm" {
		t.Errorf("ChaosOutcome.Engine = %q, want hpimdm", out.Engine)
	}
	if len(out.Violations) != 0 {
		t.Errorf("baseline cell under hpimdm: %v", out.Violations)
	}
	if out.PIMBytes == 0 {
		t.Error("ChaosOutcome.PIMBytes = 0, want control traffic accounted")
	}
	if out.ConvTime <= 0 || out.ConvTime >= 75 {
		t.Errorf("ChaosOutcome.ConvTime = %v, want within the quiesce window", out.ConvTime)
	}
}
