package mip6mcast

import (
	"fmt"
	"time"

	"mip6mcast/internal/exp"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/netem"
	"mip6mcast/internal/sim"
)

// SMTU — the tunnel MTU problem (extension; the paper's conclusion flags
// "implementation issues, in particular with the proposed uni-directional
// tunnels"). RFC 2473 encapsulation adds 40 bytes, so datagrams within 40
// bytes of the link MTU fit everywhere on the native tree but make the
// *outer* tunnel packet too big: the home agent must fragment it, doubling
// the tunnel's frame count and — under loss — amplifying datagram loss
// (all fragments must survive).

// SMTUPoint is one payload-size sample.
type SMTUPoint struct {
	PayloadBytes int
	// InnerFrame and OuterFrame are the on-wire sizes (before/after
	// encapsulation).
	InnerFrame, OuterFrame int
	// Fragmented reports whether the tunnel leg had to fragment.
	Fragmented bool
	// TunnelFramesPerDgram on the tunnel path.
	TunnelFramesPerDgram float64
	// DeliveryLocal and DeliveryTunnel are delivery ratios under the
	// configured loss for a local receiver and the tunneled receiver.
	DeliveryLocal, DeliveryTunnel float64
}

// RunSMTU sweeps the datagram payload size across the tunnel-MTU boundary.
// R3 receives through its home agent on Link 6; R1 receives locally (the
// control). lossRate is applied to every link.
//
// Compatibility shim over the "smtu" registry entry at a single loss rate.
func RunSMTU(opt Options, payloads []int, lossRate float64) []SMTUPoint {
	res := mustRunExp("smtu", exp.Context{Opt: opt},
		exp.Params{"payloads": payloads, "losses": []float64{lossRate}, "tquery": 0})
	out := make([]SMTUPoint, len(res.Stats))
	for i, pt := range res.Stats {
		out[i] = pt.Raw[0].(SMTUPoint)
	}
	return out
}

func runSMTUOne(opt Options, payload int, lossRate float64) SMTUPoint {
	r := NewRun(opt, UniTunnelHAToMN, 100*time.Millisecond, payload)
	f := r.F

	// Count frames on L5 (a tunnel-path link toward L6) that belong to the
	// tunnel flow (fragments or whole tunnel packets).
	tunnelFrames := 0
	f.Links["L5"].AddTap(func(ev netem.TxEvent) {
		if ev.Pkt.Proto == 41 /* IPv6-in-IPv6 */ || ev.Pkt.Fragment != nil {
			tunnelFrames++
		}
	})

	f.Run(30 * time.Second)
	r.MoveHost("R3", "L6")
	f.Run(20 * time.Second) // registration + membership settle
	if lossRate > 0 {
		for _, l := range f.Links {
			l.LossRate = lossRate
		}
	}
	countStart := f.Sched.Now()
	sentStart := r.CBR.Sent
	f.Run(2 * time.Minute)
	sent := int(r.CBR.Sent - sentStart)

	innerFrame := 48 + payload // IPv6 + UDP headers
	outerFrame := innerFrame + 40
	point := SMTUPoint{
		PayloadBytes: payload,
		InnerFrame:   innerFrame,
		OuterFrame:   outerFrame,
		Fragmented:   opt.LinkMTU > 0 && outerFrame > opt.LinkMTU,
	}
	if sent > 0 {
		point.TunnelFramesPerDgram = float64(tunnelFrames) / float64(sent)
		point.DeliveryTunnel = float64(r.Probes["R3"].CountBetween(countStart, sim.Time(1<<62))) / float64(sent)
		point.DeliveryLocal = float64(r.Probes["R1"].CountBetween(countStart, sim.Time(1<<62))) / float64(sent)
	}
	return point
}

// SMTUTable renders the sweep.
func SMTUTable(points []SMTUPoint, lossRate float64) string {
	cols := []string{"inner(B)", "outer(B)", "frag", "frames/dgram", "deliv-local", "deliv-tunnel"}
	rows := make([]metrics.Row, 0, len(points))
	for _, p := range points {
		frag := 0.0
		if p.Fragmented {
			frag = 1
		}
		rows = append(rows, metrics.Row{
			Label: fmt.Sprintf("payload=%d", p.PayloadBytes),
			Values: map[string]float64{
				"inner(B)":     float64(p.InnerFrame),
				"outer(B)":     float64(p.OuterFrame),
				"frag":         frag,
				"frames/dgram": p.TunnelFramesPerDgram,
				"deliv-local":  p.DeliveryLocal,
				"deliv-tunnel": p.DeliveryTunnel,
			},
		})
	}
	title := fmt.Sprintf("SMTU: tunnel MTU boundary (MTU=1500, loss=%.0f%%)", lossRate*100)
	return metrics.Table(title, cols, rows)
}
