package mip6mcast

import (
	"time"

	"mip6mcast/internal/exp"
	"mip6mcast/internal/metrics"
	"mip6mcast/internal/pimdm"
	"mip6mcast/internal/scenario"
	"mip6mcast/internal/sim"
)

// Experiment IDs (see DESIGN.md §4) with their paper artifacts:
//
//	F1   — Figure 1: initial distribution tree
//	F2   — Figure 2: mobile receiver, local membership on foreign link
//	F3   — Figure 3: mobile receiver, membership via home agent tunnel
//	F4   — Figure 4: mobile sender, reverse tunnel (vs local sending)
//	T1   — Table 1 / §4.3: the four approaches compared
//	S44  — §4.4: MLD timer optimization sweep
//	S431 — §4.3.1: mobile-sender flood/assert overhead
//	S432 — §4.3.2: tunnel convergence (N receivers on one foreign link)

// F1Result captures the converged Figure 1 tree.
type F1Result struct {
	// DataBytesPerLink is multicast data carried per link over the run.
	DataBytesPerLink map[string]uint64
	// FloodFramesL5 counts data frames on the pruned branch (only the
	// pre-prune flood should appear).
	FloodFramesL5 int
	FramesL6      int
	// TreeAtD is router D's converged (S,G) view.
	TreeAtD []pimdm.SGInfo
	// Delivered counts datagrams per receiver; Sent is the CBR total.
	Delivered map[string]int
	Sent      uint64
}

// RunF1 reproduces Figure 1: all hosts at home, S streaming to the group;
// PIM-DM floods, prunes Links 5/6, and settles on the L1–L4 tree.
//
// Compatibility shim over the "f1" registry entry (see internal/exp),
// which also measures the proxy-hierarchy build; this returns the flat
// (paper) one.
func RunF1(opt Options) F1Result {
	return mustRunExp("f1", exp.Context{Opt: opt}, nil).Artifact.([2]F1Result)[0]
}

func measureF1(opt Options, approach Approach) F1Result {
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	l5 := r.WatchLink("L5")
	l6 := r.WatchLink("L6")
	for _, n := range scenario.LinkNames() {
		r.WatchLink(n)
	}
	r.F.Run(60 * time.Second)

	res := F1Result{
		DataBytesPerLink: map[string]uint64{},
		FloodFramesL5:    l5.Frames,
		FramesL6:         l6.Frames,
		TreeAtD:          r.F.Routers["D"].Engine.Entries(),
		Delivered:        map[string]int{},
		Sent:             r.CBR.Sent,
	}
	for _, n := range scenario.LinkNames() {
		res.DataBytesPerLink[n] = r.WatchLink(n).Bytes
	}
	for name, p := range r.Probes {
		res.Delivered[name] = p.Count()
	}
	return res
}

// F2Result quantifies the paper's Figure 2 discussion.
type F2Result struct {
	// JoinDelay is how long after attaching to Link 6 the receiver got its
	// next datagram.
	JoinDelay time.Duration
	Rejoined  bool
	// LeaveDelay is how long Router D kept forwarding onto Link 4 after
	// the receiver left (bounded by T_MLI = 260 s with defaults).
	LeaveDelay time.Duration
	// WastedBytes is multicast data transmitted onto Link 4 during the
	// leave delay (the paper's bandwidth-consumption criterion).
	WastedBytes uint64
	// Delivered on L6 after the move.
	DeliveredAfterMove int
}

// RunF2 reproduces Figure 2: Receiver 3 moves from Link 4 to the pruned
// Link 6 under the local-membership approach. unsolicitedReports selects
// the paper's recommended optimization; with it off the receiver waits for
// the next MLD Query.
//
// Compatibility shim over the "f2" registry entry, which measures both
// report policies plus the proxy hierarchy; this picks the requested
// report policy.
func RunF2(opt Options, unsolicitedReports bool) F2Result {
	all := mustRunExp("f2", exp.Context{Opt: opt}, nil).Artifact.([3]F2Result)
	if unsolicitedReports {
		return all[0]
	}
	return all[1]
}

func measureF2(opt Options, unsolicitedReports bool, approach Approach) F2Result {
	opt.HostMLD.ResendOnMove = unsolicitedReports
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	l4 := r.WatchLink("L4")
	// Run past the MLD startup-query phase so the no-unsolicited join path
	// waits for a regular periodic Query, as the paper's analysis assumes.
	r.F.Run(60 * time.Second)

	moveAt := r.MoveHost("R3", "L6")
	// Run past T_MLI plus slack so the leave delay completes, and past a
	// full query interval for the no-unsolicited join path.
	horizon := opt.MLD.ListenerInterval() + opt.MLD.QueryInterval + 60*time.Second
	r.F.Run(horizon)

	res := F2Result{}
	if d, ok := r.JoinDelay("R3", moveAt); ok {
		res.JoinDelay = d
		res.Rejoined = true
	}
	if l4.Last > moveAt {
		res.LeaveDelay = l4.Last.Sub(moveAt)
	}
	// Wasted bytes: data on L4 after the move (R3 was its only member).
	res.WastedBytes = l4.BytesAfter(moveAt)
	res.DeliveredAfterMove = r.Probes["R3"].CountBetween(moveAt, sim.Time(1<<62))
	return res
}

// F3Result quantifies Figure 3.
type F3Result struct {
	// JoinDelay after the move (should be ≈ binding registration, far
	// below the MLD-driven delays of F2).
	JoinDelay time.Duration
	Rejoined  bool
	// TunnelOverheadBytes across all links (encapsulation headers).
	TunnelOverheadBytes uint64
	// MeanHops the delivered datagrams traveled after the move, vs the
	// unicast-optimal router count from the sender's link.
	MeanHops    float64
	OptimalHops int
	// HATunneled counts datagrams the home agent put into the tunnel.
	HATunneled uint64
}

// RunF3 reproduces Figure 3: Receiver 3 moves from Link 4 to Link 1 and
// receives through its home agent (Router D) over the tunnel. The variant
// selects the paper's §4.3.2 signaling mechanism.
//
// Compatibility shim over the "f3" registry entry, which measures both
// variants (plus a proxy-hierarchy contrast row); this picks the
// requested tunnel variant.
func RunF3(opt Options, variant HAVariant) F3Result {
	both := mustRunExp("f3", exp.Context{Opt: opt}, nil).Artifact.(map[HAVariant]F3Result)
	return both[variant]
}

func measureF3(opt Options, variant HAVariant) F3Result {
	approach := UniTunnelHAToMN
	approach.Variant = variant
	return measureF3Run(opt, approach)
}

// measureF3Run drives the Figure 3 timeline (R3 moves L4→L1) under any
// receive approach; the proxy-hierarchy contrast row reuses it with
// tunnel-free metrics naturally reading zero.
func measureF3Run(opt Options, approach Approach) F3Result {
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	r.F.Run(30 * time.Second)

	moveAt := r.MoveHost("R3", "L1")
	r.F.Run(120 * time.Second)

	res := F3Result{OptimalHops: r.OptimalRouterHops("L1", "L1")}
	if d, ok := r.JoinDelay("R3", moveAt); ok {
		res.JoinDelay = d
		res.Rejoined = true
	}
	res.TunnelOverheadBytes = r.F.Acct.TotalBytes(metrics.ClassTunnel)
	res.MeanHops = r.Probes["R3"].MeanHops(moveAt+sim.Time(20*time.Second), sim.Time(1<<62))
	ha := r.F.HomeAgentOf("R3")
	res.HATunneled = ha.MulticastTunneled
	return res
}

// F4Result quantifies Figure 4 and its contrast with local sending.
type F4Result struct {
	// MaxGapAfterMove is the worst delivery interruption any static
	// receiver saw around the sender's move.
	MaxGapAfterMove time.Duration
	// NewTreesBuilt counts PIM floods started after the move (reverse
	// tunneling keeps the original (S,G); local sending builds a new one).
	NewTreesBuilt uint64
	// PeakSGEntries is the maximum simultaneous (S,G) state across all
	// routers (stale trees linger for the 210 s data timeout).
	PeakSGEntries int
	// AssertsSent across all routers after the move.
	AssertsSent uint64
	// TunnelOverheadBytes spent on the reverse tunnel.
	TunnelOverheadBytes uint64
	// DeliveredAfterMove per receiver.
	DeliveredAfterMove map[string]int
}

// RunF4 reproduces Figure 4 (sendTunnel=true: Sender S moves to Link 6 and
// reverse-tunnels to Router A) and the §4.2.2-A contrast (sendTunnel=false:
// S sends locally and PIM-DM builds a new tree).
//
// Compatibility shim over the "f4" registry entry, which measures both
// send modes plus the proxy hierarchy; this picks the requested send
// mode.
func RunF4(opt Options, sendTunnel bool) F4Result {
	all := mustRunExp("f4", exp.Context{Opt: opt}, nil).Artifact.([3]F4Result)
	if sendTunnel {
		return all[0]
	}
	return all[1]
}

func measureF4(opt Options, sendTunnel bool) F4Result {
	approach := LocalMembership
	if sendTunnel {
		approach = UniTunnelMNToHA
	}
	return measureF4Run(opt, approach)
}

// measureF4Run drives the Figure 4 timeline (S moves to L6) under any
// approach; the proxy-hierarchy row sends locally from below proxy E,
// which up-forwards to the anchor instead of re-flooding from scratch.
func measureF4Run(opt Options, approach Approach) F4Result {
	r := NewRun(opt, approach, 100*time.Millisecond, 64)
	peak := 0
	sim.NewTicker(r.F.Sched, time.Second, 0, func() {
		if n := r.F.TotalSGEntries(); n > peak {
			peak = n
		}
	})
	r.F.Run(30 * time.Second)

	before := r.F.PIMStats()
	moveAt := r.MoveHost("S", "L6")
	r.F.Run(120 * time.Second)
	after := r.F.PIMStats()

	res := F4Result{
		NewTreesBuilt:       after.FloodsStarted - before.FloodsStarted,
		PeakSGEntries:       peak,
		AssertsSent:         after.AssertsSent - before.AssertsSent,
		TunnelOverheadBytes: r.F.Acct.TotalBytes(metrics.ClassTunnel),
		DeliveredAfterMove:  map[string]int{},
	}
	end := moveAt + sim.Time(60*time.Second)
	for name, p := range r.Probes {
		res.DeliveredAfterMove[name] = p.CountBetween(moveAt, end)
		if g := p.MaxGap(moveAt-sim.Time(5*time.Second), end); time.Duration(g) > res.MaxGapAfterMove {
			res.MaxGapAfterMove = time.Duration(g)
		}
	}
	return res
}
